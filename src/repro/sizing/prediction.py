"""Demand predictors for dynamic consolidation (paper §2.1, *Prediction*).

Dynamic consolidation sizes each VM at "the estimated peak demand in the
consolidation window" (§5.1) — *estimated*, because the window lies in
the future.  Prediction error is the mechanism behind the paper's
contention results (Figs. 8, 9): a spike that the predictor did not see
coming lands on a tightly packed host.

All predictors implement :class:`Predictor`: given the demand history up
to now, predict the peak demand of the next ``horizon`` samples.

* :class:`OraclePredictor` — cheats by looking at the actual future;
  isolates packing effects from prediction effects in ablations.
* :class:`LastIntervalPredictor` — peak of the most recent interval.
* :class:`EwmaPredictor` — EWMA of past interval peaks.
* :class:`PeriodicPeakPredictor` — the default: max over the same
  time-of-day in the last few days plus a safety margin; tracks diurnal
  patterns well, misses heavy-tail spikes — exactly the error profile
  enterprise capacity tools exhibit.

Every predictor also offers ``predict_peak_matrix`` — the same
prediction for all VM rows of a ``(n_vms, n_points)`` history at once —
and the module-level :func:`build_peak_table` assembles the full
``(n_vms, n_intervals)`` peak table a dynamic plan needs in a handful
of array ops (stride-tricks window maxima, incremental EWMA folds).
Bit-identical results are the contract: each kernel evaluates exactly
the scalar expressions, row-broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.exceptions import ConfigurationError, TraceError

__all__ = [
    "Predictor",
    "OraclePredictor",
    "LastIntervalPredictor",
    "EwmaPredictor",
    "PeriodicPeakPredictor",
    "build_peak_table",
]


def _check_history(history: np.ndarray) -> np.ndarray:
    history = np.asarray(history, dtype=float)
    if history.ndim != 1 or history.size == 0:
        raise TraceError("predictor needs a non-empty 1-D history")
    return history


def _check_history_matrix(history: np.ndarray) -> np.ndarray:
    history = np.asarray(history, dtype=float)
    if history.ndim != 2 or history.shape[1] == 0:
        raise TraceError("predict_peak_matrix expects (n, t>0) history")
    return history


def _check_horizon(horizon: int) -> None:
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon}")


def _check_starts(
    starts: Sequence[int], horizon: int, n_points: int, *, need_future: bool
) -> Sequence[int]:
    starts = [int(s) for s in starts]
    for start in starts:
        if start < 1:
            raise TraceError("predictor needs a non-empty 1-D history")
        if need_future and start + horizon > n_points:
            raise TraceError(
                f"actual future has {max(n_points - start, 0)} samples, "
                f"need {horizon}"
            )
        if start > n_points:
            raise TraceError(
                f"table start {start} beyond the {n_points}-point series"
            )
    return starts


def build_peak_table(
    predictor: "Predictor",
    full: np.ndarray,
    horizon: int,
    starts: Sequence[int],
) -> np.ndarray:
    """Peak predictions for every VM row at every interval start.

    ``full`` is the whole ``(n_vms, n_points)`` demand series (history
    and evaluation concatenated); column ``j`` of the result equals
    ``predictor.predict_peak(full[row, :starts[j]], horizon,
    full[row, starts[j]:starts[j] + horizon])`` for every row.  Uses the
    predictor's own ``predict_peak_table`` kernel when it has one, then
    ``predict_peak_matrix`` per interval, then the scalar protocol —
    all three produce bit-identical tables.
    """
    full = _check_history_matrix(full)
    _check_horizon(horizon)
    table_path = getattr(predictor, "predict_peak_table", None)
    if table_path is not None:
        return table_path(full, horizon, starts)
    starts = _check_starts(
        starts, horizon, full.shape[1], need_future=False
    )
    matrix_path = getattr(predictor, "predict_peak_matrix", None)
    columns = []
    for now in starts:
        history = full[:, :now]
        future = full[:, now:now + horizon]
        if matrix_path is not None:
            columns.append(matrix_path(history, horizon, future))
        else:
            columns.append(
                np.array(
                    [
                        predictor.predict_peak(
                            history[row], horizon, future[row]
                        )
                        for row in range(full.shape[0])
                    ]
                )
            )
    return np.stack(columns, axis=1)


@runtime_checkable
class Predictor(Protocol):
    """Predicts the peak demand of the next ``horizon`` samples."""

    def predict_peak(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> float:
        """Return the predicted peak for the next ``horizon`` samples.

        ``actual_future`` is only consulted by oracle-style predictors;
        honest predictors must ignore it.
        """
        ...


@dataclass(frozen=True)
class OraclePredictor:
    """Perfect foresight: returns the actual future peak.

    Requires ``actual_future``; used to separate "dynamic consolidation
    with perfect prediction" from "dynamic consolidation as deployable".
    """

    def predict_peak(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> float:
        _check_history(history)
        if actual_future is None:
            raise ConfigurationError(
                "OraclePredictor needs the actual future demand"
            )
        future = np.asarray(actual_future, dtype=float)
        if future.size < horizon:
            raise TraceError(
                f"actual future has {future.size} samples, need {horizon}"
            )
        return float(future[:horizon].max())

    def predict_peak_matrix(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Row-wise :meth:`predict_peak` for a ``(n, t)`` history."""
        _check_history_matrix(history)
        _check_horizon(horizon)
        if actual_future is None:
            raise ConfigurationError(
                "OraclePredictor needs the actual future demand"
            )
        future = np.asarray(actual_future, dtype=float)
        if future.ndim != 2 or future.shape[1] < horizon:
            raise TraceError(
                f"actual future has {future.shape[-1]} samples, "
                f"need {horizon}"
            )
        return future[:, :horizon].max(axis=1)

    def predict_peak_table(
        self,
        full: np.ndarray,
        horizon: int,
        starts: Sequence[int],
    ) -> np.ndarray:
        """All interval predictions at once: a sliding-window max gather.

        ``sliding_window_view`` exposes every length-``horizon`` window
        of the series as a stride-tricks view; the per-interval future
        peaks are one ``max`` reduction plus a column gather.
        """
        full = _check_history_matrix(full)
        _check_horizon(horizon)
        starts = _check_starts(
            starts, horizon, full.shape[1], need_future=True
        )
        if full.shape[1] < horizon:
            raise TraceError(
                f"actual future has 0 samples, need {horizon}"
            )
        windows = np.lib.stride_tricks.sliding_window_view(
            full, horizon, axis=1
        )
        window_max = windows.max(axis=2)
        return window_max[:, np.asarray(starts, dtype=np.intp)]


@dataclass(frozen=True)
class LastIntervalPredictor:
    """Peak of the most recent ``horizon`` samples (naive persistence)."""

    def predict_peak(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> float:
        history = _check_history(history)
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        return float(history[-min(horizon, history.size):].max())

    def predict_peak_matrix(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Row-wise :meth:`predict_peak` for a ``(n, t)`` history."""
        history = _check_history_matrix(history)
        _check_horizon(horizon)
        n = history.shape[1]
        return history[:, -min(horizon, n):].max(axis=1)

    def predict_peak_table(
        self,
        full: np.ndarray,
        horizon: int,
        starts: Sequence[int],
    ) -> np.ndarray:
        """All interval predictions at once via sliding-window maxima.

        The prediction at ``now`` is the max of the window *ending* at
        ``now``; for ``now >= horizon`` that is one gather from the
        stride-tricks window-max table, with the short-history prefix
        handled per column.
        """
        full = _check_history_matrix(full)
        _check_horizon(horizon)
        starts = _check_starts(
            starts, horizon, full.shape[1], need_future=False
        )
        table = np.empty((full.shape[0], len(starts)))
        window_max = None
        if full.shape[1] >= horizon and any(s >= horizon for s in starts):
            windows = np.lib.stride_tricks.sliding_window_view(
                full, horizon, axis=1
            )
            window_max = windows.max(axis=2)
        for j, now in enumerate(starts):
            if now >= horizon and window_max is not None:
                table[:, j] = window_max[:, now - horizon]
            else:
                table[:, j] = full[:, :now][:, -min(horizon, now):].max(
                    axis=1
                )
        return table


@dataclass(frozen=True)
class EwmaPredictor:
    """EWMA over past interval peaks.

    The history is chopped into ``horizon``-sized intervals (most recent
    last); their peaks are smoothed with factor ``alpha``.  Responds to
    trends faster than :class:`PeriodicPeakPredictor` but has no notion
    of time-of-day.
    """

    alpha: float = 0.3

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {self.alpha}"
            )

    def predict_peak(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> float:
        history = _check_history(history)
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        usable = (history.size // horizon) * horizon
        if usable == 0:
            return float(history.max())
        peaks = history[-usable:].reshape(-1, horizon).max(axis=1)
        estimate = peaks[0]
        for peak in peaks[1:]:
            estimate = self.alpha * peak + (1 - self.alpha) * estimate
        return float(estimate)

    def predict_peak_matrix(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Row-wise :meth:`predict_peak` for a ``(n, t)`` history.

        One block-peak reduction plus a fold over block columns — the
        fold runs over *intervals*, not VMs, so its cost is independent
        of fleet size.  Each step evaluates exactly the scalar EWMA
        expression, broadcast.
        """
        history = _check_history_matrix(history)
        _check_horizon(horizon)
        n = history.shape[1]
        usable = (n // horizon) * horizon
        if usable == 0:
            return history.max(axis=1)
        peaks = history[:, n - usable:].reshape(
            history.shape[0], -1, horizon
        ).max(axis=2)
        estimate = peaks[:, 0]
        for block in range(1, peaks.shape[1]):
            estimate = (
                self.alpha * peaks[:, block] + (1 - self.alpha) * estimate
            )
        return estimate

    def predict_peak_table(
        self,
        full: np.ndarray,
        horizon: int,
        starts: Sequence[int],
    ) -> np.ndarray:
        """All interval predictions at once via an incremental fold.

        Consecutive interval starts share the same block phase, so each
        interval's EWMA extends the previous one by the newly completed
        blocks: the whole table costs one block-peak reduction plus one
        vectorized fold step per new block, instead of refolding the
        entire history 360 times.
        """
        full = _check_history_matrix(full)
        _check_horizon(horizon)
        starts = _check_starts(
            starts, horizon, full.shape[1], need_future=False
        )
        phase = starts[0] % horizon
        incremental = all(
            s % horizon == phase for s in starts
        ) and all(a <= b for a, b in zip(starts, starts[1:]))
        if not incremental:
            return np.stack(
                [
                    self.predict_peak_matrix(full[:, :now], horizon)
                    for now in starts
                ],
                axis=1,
            )
        n_blocks = max(s // horizon for s in starts)
        peaks = None
        if n_blocks:
            peaks = full[:, phase:phase + n_blocks * horizon].reshape(
                full.shape[0], n_blocks, horizon
            ).max(axis=2)
        table = np.empty((full.shape[0], len(starts)))
        estimate = None
        folded = 0
        for j, now in enumerate(starts):
            blocks = now // horizon
            if blocks == 0:
                table[:, j] = full[:, :now].max(axis=1)
                continue
            if estimate is None:
                estimate = peaks[:, 0]
                folded = 1
            while folded < blocks:
                estimate = (
                    self.alpha * peaks[:, folded]
                    + (1 - self.alpha) * estimate
                )
                folded += 1
            table[:, j] = estimate
        return table


@dataclass(frozen=True)
class PeriodicPeakPredictor:
    """Same-time-of-day peak over recent days, with a safety margin.

    The prediction for the next interval is the maximum demand observed
    during the same interval of the day over the last ``lookback_days``
    days, inflated by ``safety_margin``.  A recency floor (the last
    ``horizon`` samples) protects against a workload that just shifted
    to a new level the daily history has not caught up with.
    """

    period: int = 24
    lookback_days: int = 7
    safety_margin: float = 0.10

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"period must be > 0, got {self.period}")
        if self.lookback_days <= 0:
            raise ConfigurationError(
                f"lookback_days must be > 0, got {self.lookback_days}"
            )
        if self.safety_margin < 0:
            raise ConfigurationError(
                f"safety_margin must be >= 0, got {self.safety_margin}"
            )

    def predict_peak(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> float:
        history = _check_history(history)
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        n = history.size
        samples = []
        # The next interval covers phases [n, n + horizon) mod period.
        for day in range(1, self.lookback_days + 1):
            start = n - day * self.period
            if start < 0:
                break
            end = min(start + horizon, n)
            samples.append(history[start:end])
        if samples:
            periodic_peak = max(float(s.max()) for s in samples if s.size)
        else:
            periodic_peak = float(history.max())
        recent_peak = float(history[-min(horizon, n):].max())
        return max(periodic_peak, recent_peak) * (1.0 + self.safety_margin)

    def predict_peak_matrix(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`predict_peak` over (n_vms, n_points) history.

        Semantically identical to looping ``predict_peak`` per row;
        used by dynamic consolidation, where the per-interval prediction
        of every VM is the planning hot path.
        """
        history = np.asarray(history, dtype=float)
        if history.ndim != 2 or history.shape[1] == 0:
            raise TraceError("predict_peak_matrix expects (n, t>0) history")
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        n = history.shape[1]
        peaks = history[:, -min(horizon, n):].max(axis=1)  # recency floor
        saw_periodic = False
        for day in range(1, self.lookback_days + 1):
            start = n - day * self.period
            if start < 0:
                break
            end = min(start + horizon, n)
            if end > start:
                saw_periodic = True
                peaks = np.maximum(
                    peaks, history[:, start:end].max(axis=1)
                )
        if not saw_periodic:
            peaks = np.maximum(peaks, history.max(axis=1))
        return peaks * (1.0 + self.safety_margin)
