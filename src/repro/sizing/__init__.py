"""Sizing: sizing functions, demand predictors, and size estimation."""

from repro.sizing.estimator import SizeEstimator, VirtualizationOverhead
from repro.sizing.network import DiskDemandModel, NetworkDemandModel
from repro.sizing.functions import (
    BodyTailSizing,
    MaxSizing,
    MeanSizing,
    PercentileSizing,
    SizingFunction,
)
from repro.sizing.prediction import (
    EwmaPredictor,
    LastIntervalPredictor,
    OraclePredictor,
    PeriodicPeakPredictor,
    Predictor,
)

__all__ = [
    "BodyTailSizing",
    "DiskDemandModel",
    "EwmaPredictor",
    "LastIntervalPredictor",
    "MaxSizing",
    "MeanSizing",
    "NetworkDemandModel",
    "OraclePredictor",
    "PercentileSizing",
    "PeriodicPeakPredictor",
    "Predictor",
    "SizeEstimator",
    "SizingFunction",
    "VirtualizationOverhead",
]
