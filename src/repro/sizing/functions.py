"""Sizing functions: collapse a demand window into one scalar (paper §2.1).

"Since a demand estimate is made for a period with potentially multiple
predicted data points, a sizing function is used to convert multiple
predicted values to a single demand value.  The most common sizing
function used is max.  Specific algorithms use other sizing functions
like 90-percentile."

The consolidation variants map onto sizing functions as:

* Static / vanilla semi-static — :class:`MaxSizing` over the whole window,
* Stochastic (PCP) — :class:`BodyTailSizing` (body = P90, tail = max-body),
* Dynamic — :class:`MaxSizing` over each short consolidation interval
  (applied to *predicted* demand, see :mod:`repro.sizing.prediction`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Tuple, runtime_checkable

import numpy as np

from repro.exceptions import ConfigurationError, TraceError

__all__ = [
    "SizingFunction",
    "MaxSizing",
    "MeanSizing",
    "PercentileSizing",
    "BodyTailSizing",
]


def _check_window(window: np.ndarray) -> np.ndarray:
    window = np.asarray(window, dtype=float)
    if window.ndim != 1 or window.size == 0:
        raise TraceError("sizing expects a non-empty 1-D demand window")
    return window


@runtime_checkable
class SizingFunction(Protocol):
    """Anything that maps a demand window to a scalar reservation."""

    def size(self, window: np.ndarray) -> float:
        """Return the reservation for the window, in the window's unit."""
        ...


@dataclass(frozen=True)
class MaxSizing:
    """Reserve the window's peak — the conservative industry default."""

    def size(self, window: np.ndarray) -> float:
        return float(_check_window(window).max())


@dataclass(frozen=True)
class MeanSizing:
    """Reserve the window's mean — the aggressive lower bound.

    Used in what-if analyses (the "provision only 5% CPU" argument of the
    paper's introduction), not by any of the shipped algorithms.
    """

    def size(self, window: np.ndarray) -> float:
        return float(_check_window(window).mean())


@dataclass(frozen=True)
class PercentileSizing:
    """Reserve a percentile of the window (PCP's body uses the 90th)."""

    percentile: float = 90.0

    def __post_init__(self) -> None:
        if not 0 <= self.percentile <= 100:
            raise ConfigurationError(
                f"percentile must be in [0, 100], got {self.percentile}"
            )

    def size(self, window: np.ndarray) -> float:
        return float(np.percentile(_check_window(window), self.percentile))


@dataclass(frozen=True)
class BodyTailSizing:
    """PCP's two-part sizing: a per-VM body and a shared tail.

    The *body* (default: 90th percentile) is reserved for every VM on a
    host; the *tail* (default: max minus body) is reserved only once per
    host, shared by the co-located VMs of different peak clusters — the
    statistical-multiplexing bet that they will not burst together.
    """

    body_percentile: float = 90.0

    def __post_init__(self) -> None:
        if not 0 <= self.body_percentile <= 100:
            raise ConfigurationError(
                f"body_percentile must be in [0, 100], got "
                f"{self.body_percentile}"
            )

    def size(self, window: np.ndarray) -> float:
        """The body alone — satisfies the :class:`SizingFunction` protocol."""
        return self.split(window)[0]

    def split(self, window: np.ndarray) -> Tuple[float, float]:
        """Return ``(body, tail)`` with ``body + tail == window.max()``."""
        window = _check_window(window)
        body = float(np.percentile(window, self.body_percentile))
        tail = float(window.max()) - body
        return body, max(tail, 0.0)
