"""Link-bandwidth demand model for placement feasibility (paper §3.1).

"Consolidation planning optimizes CPU and memory, while using network
and disk throughput as constraints to identify hosts with sufficient
link bandwidth."

Enterprise monitoring reports TCP/IP packet counts per server (Table 1
of the paper); planning tools convert them into a bandwidth reservation
roughly proportional to the server's compute activity, with web-facing
workloads moving far more bytes per unit of CPU than batch compute.
:class:`NetworkDemandModel` captures that conversion: sized network
demand = intensity(workload class) × sized CPU demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.infrastructure.vm import WorkloadClass

__all__ = ["NetworkDemandModel", "DiskDemandModel"]


@dataclass(frozen=True)
class NetworkDemandModel:
    """Converts sized CPU demand into a link-bandwidth reservation.

    Intensities are in Mbps per RPE2 of sized CPU demand.  Defaults are
    calibrated so a fully busy HS23 blade (20480 RPE2) of web workloads
    would saturate roughly one 10 GbE link — bandwidth matters but only
    binds for network-heavy estates, matching its constraint (not
    optimization-objective) role in the paper.
    """

    web_mbps_per_rpe2: float = 0.40
    batch_mbps_per_rpe2: float = 0.08
    #: Baseline per-VM chatter (monitoring, AD, backup control traffic).
    base_mbps: float = 2.0

    def __post_init__(self) -> None:
        if self.web_mbps_per_rpe2 < 0 or self.batch_mbps_per_rpe2 < 0:
            raise ConfigurationError("network intensities must be >= 0")
        if self.base_mbps < 0:
            raise ConfigurationError("base_mbps must be >= 0")

    def demand_mbps(self, workload_class: str, sized_cpu_rpe2: float) -> float:
        """Bandwidth reservation for one sized VM."""
        if sized_cpu_rpe2 < 0:
            raise ConfigurationError(
                f"sized_cpu_rpe2 must be >= 0, got {sized_cpu_rpe2}"
            )
        top_level = WorkloadClass.top_level(workload_class)
        intensity = (
            self.web_mbps_per_rpe2
            if top_level == WorkloadClass.WEB
            else self.batch_mbps_per_rpe2
        )
        return self.base_mbps + intensity * sized_cpu_rpe2


@dataclass(frozen=True)
class DiskDemandModel:
    """Converts sized CPU demand into a SAN-throughput reservation.

    The mirror of :class:`NetworkDemandModel` for the paper's second
    I/O constraint.  The intensity skew flips: batch/analytics jobs
    stream data (high MB/s per RPE2) while interactive web workloads
    mostly hit caches.
    """

    web_mbps_per_rpe2: float = 0.05
    batch_mbps_per_rpe2: float = 0.20
    #: Baseline per-VM churn (OS paging, logging).
    base_mbps: float = 1.0

    def __post_init__(self) -> None:
        if self.web_mbps_per_rpe2 < 0 or self.batch_mbps_per_rpe2 < 0:
            raise ConfigurationError("disk intensities must be >= 0")
        if self.base_mbps < 0:
            raise ConfigurationError("base_mbps must be >= 0")

    def demand_mbps(self, workload_class: str, sized_cpu_rpe2: float) -> float:
        """Storage-throughput reservation for one sized VM."""
        if sized_cpu_rpe2 < 0:
            raise ConfigurationError(
                f"sized_cpu_rpe2 must be >= 0, got {sized_cpu_rpe2}"
            )
        top_level = WorkloadClass.top_level(workload_class)
        intensity = (
            self.web_mbps_per_rpe2
            if top_level == WorkloadClass.WEB
            else self.batch_mbps_per_rpe2
        )
        return self.base_mbps + intensity * sized_cpu_rpe2
