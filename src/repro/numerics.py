"""Floating-point tolerance helpers for capacity and utilization math.

The emulator's ≤5% 99th-percentile error contract (paper Section 5.1)
is only meaningful if the reproduction does not manufacture spurious
error through floating-point equality tests on derived quantities
(utilizations, sized demands, capacity headroom).  Exact ``==`` on such
values is forbidden by the ``REPRO104`` lint rule; use these helpers
instead so every tolerance decision is explicit and consistent.

The module is intentionally a leaf: it imports nothing from
:mod:`repro` so any layer (workloads, placement, emulator, monitoring)
can depend on it without cycles.
"""

from __future__ import annotations

import math

__all__ = ["CAPACITY_SLACK", "approx_eq", "approx_ne", "approx_lte", "approx_gte"]

#: Absolute slack used when testing whether a demand fits a capacity.
#: Matches the headroom the first-fit bins already allow so that a sum
#: of per-VM demands that mathematically equals the capacity is not
#: rejected for a 1-ulp rounding excess.
CAPACITY_SLACK = 1e-9


def approx_eq(
    a: float, b: float, *, rel_tol: float = 1e-9, abs_tol: float = 1e-12
) -> bool:
    """True when ``a`` and ``b`` are equal within tolerance.

    A thin wrapper over :func:`math.isclose` with an absolute floor so
    comparisons against 0.0 behave sensibly (``math.isclose`` alone
    treats nothing as close to zero under a purely relative tolerance).
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def approx_ne(
    a: float, b: float, *, rel_tol: float = 1e-9, abs_tol: float = 1e-12
) -> bool:
    """Negation of :func:`approx_eq` with the same tolerances."""
    return not math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def approx_lte(a: float, b: float, *, slack: float = CAPACITY_SLACK) -> bool:
    """True when ``a`` is at most ``b`` plus ``slack``.

    The canonical "does this demand fit this capacity" test.
    """
    return a <= b + slack


def approx_gte(a: float, b: float, *, slack: float = CAPACITY_SLACK) -> bool:
    """True when ``a`` is at least ``b`` minus ``slack``."""
    return a >= b - slack
