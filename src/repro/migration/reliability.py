"""Migration reliability study — derives the reservation rule (Obs. 4).

"We observed that if the CPU utilization is below 80% and memory
committed is below 85%, we can perform live migration reliably ...
We use a thumb rule of reserving 20% resources for reliable live
migration."

:func:`reliability_sweep` runs a population of migrations at each host
load level and reports the success rate and duration tail;
:func:`recommended_reservation` finds the highest utilization bound that
still meets a reliability target — the quantitative form of the paper's
20% rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.migration.precopy import (
    PreCopyConfig,
    simulate_migrations,
)

__all__ = [
    "ReliabilityPoint",
    "reliability_sweep",
    "recommended_reservation",
]


@dataclass(frozen=True)
class ReliabilityPoint:
    """Aggregate migration behaviour at one host load level."""

    host_cpu_util: float
    host_memory_util: float
    success_rate: float
    mean_duration_s: float
    p99_duration_s: float
    mean_downtime_s: float

    def reliable(
        self, min_success_rate: float = 0.95, max_p99_duration_s: float = 290.0
    ) -> bool:
        """The paper's operational bar: migrations succeed and stay short."""
        return (
            self.success_rate >= min_success_rate
            and self.p99_duration_s <= max_p99_duration_s
        )


def reliability_sweep(
    utilizations: Sequence[float],
    *,
    n_migrations: int = 200,
    seed: int = 7,
    memory_tracks_cpu: bool = True,
    config: PreCopyConfig = PreCopyConfig(),
) -> Tuple[ReliabilityPoint, ...]:
    """Simulate migration populations across host utilization levels.

    At each utilization ``u``, ``n_migrations`` migrations run with VM
    memory sizes lognormally spread around 2 GB and dirty rates around
    20 MB/s (SpecWeb-class writers per Clark et al.).  With
    ``memory_tracks_cpu`` the host memory commit equals the CPU level —
    the consolidated-host situation the reservation protects.
    """
    if n_migrations <= 0:
        raise ConfigurationError(
            f"n_migrations must be > 0, got {n_migrations}"
        )
    rng = np.random.default_rng(seed)
    points = []
    for utilization in utilizations:
        if not 0 <= utilization <= 1:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        memory_util = utilization if memory_tracks_cpu else 0.5
        # RNG draws stay interleaved per migration (memory, then dirty
        # rate) so the stream matches the historical per-call loop; only
        # the simulation itself is batched.
        memories = []
        dirty_rates = []
        for _ in range(n_migrations):
            memories.append(
                float(
                    np.clip(
                        rng.lognormal(mean=np.log(2.0), sigma=0.6), 0.25, 16.0
                    )
                )
            )
            dirty_rates.append(
                float(
                    np.clip(
                        rng.lognormal(mean=np.log(20.0), sigma=0.7), 1.0, 90.0
                    )
                )
            )
        outcomes = simulate_migrations(
            memories,
            dirty_rates,
            host_cpu_util=utilization,
            host_memory_util=memory_util,
            config=config,
        )
        durations = np.array([o.duration_s for o in outcomes])
        points.append(
            ReliabilityPoint(
                host_cpu_util=float(utilization),
                host_memory_util=float(memory_util),
                success_rate=float(np.mean([o.success for o in outcomes])),
                mean_duration_s=float(durations.mean()),
                p99_duration_s=float(np.percentile(durations, 99)),
                mean_downtime_s=float(
                    np.mean([o.downtime_s for o in outcomes])
                ),
            )
        )
    return tuple(points)


def recommended_reservation(
    *,
    min_success_rate: float = 0.95,
    max_p99_duration_s: float = 290.0,
    granularity: float = 0.05,
    config: PreCopyConfig = PreCopyConfig(),
    seed: int = 7,
) -> float:
    """Smallest resource reservation that keeps migration reliable.

    Sweeps utilization bounds from high to low and returns ``1 - bound``
    for the highest bound whose :class:`ReliabilityPoint` passes the
    reliability bar.  With default parameters this lands at ~0.20 — the
    paper's Observation 4.
    """
    if not 0 < granularity < 1:
        raise ConfigurationError(
            f"granularity must be in (0, 1), got {granularity}"
        )
    bounds = np.arange(1.0, 0.0, -granularity)
    points = reliability_sweep(
        [float(round(b, 10)) for b in bounds], seed=seed, config=config
    )
    for point in points:
        if point.reliable(min_success_rate, max_p99_duration_s):
            return float(round(1.0 - point.host_cpu_util, 10))
    return float(round(1.0 - points[-1].host_cpu_util, 10))
