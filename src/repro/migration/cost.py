"""Migration cost model for adaptation decisions.

Dynamic consolidation must weigh the benefit of a move (power saved for
one consolidation interval) against its cost, as pMapper (Middleware'08)
and the cost-sensitive adaptation engine of Jung et al. (Middleware'09)
do.  The cost of one live migration has two parts:

* **energy/resource cost** — copying the VM's active memory burns CPU
  and network on both hosts for the migration's duration,
* **SLA risk cost** — the throughput dip during pre-copy and the
  stop-and-copy downtime, priced per second of migration.

Both scale with the VM's active memory, so the model reduces to a
per-GB price expressed in the same unit as interval power savings
(watt-hours), making benefit/cost directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.exceptions import ConfigurationError
from repro.migration.precopy import (
    PreCopyConfig,
    simulate_migration,
    simulate_migrations,
)

__all__ = ["MigrationCostModel"]


@dataclass(frozen=True)
class MigrationCostModel:
    """Prices one live migration in watt-hour-equivalent units."""

    #: Extra power drawn on source + target while the copy runs (W).
    migration_power_watts: float = 80.0
    #: SLA-risk price per second of migration, in watt-hour equivalents.
    sla_cost_per_second: float = 0.15
    #: Dirty rate assumed for cost estimation (MB/s).
    assumed_dirty_rate_mb_s: float = 20.0
    precopy: PreCopyConfig = PreCopyConfig()

    def __post_init__(self) -> None:
        if self.migration_power_watts < 0:
            raise ConfigurationError("migration_power_watts must be >= 0")
        if self.sla_cost_per_second < 0:
            raise ConfigurationError("sla_cost_per_second must be >= 0")
        if self.assumed_dirty_rate_mb_s < 0:
            raise ConfigurationError("assumed_dirty_rate_mb_s must be >= 0")

    def migration_duration_s(self, vm_memory_gb: float) -> float:
        """Expected migration duration at the planning load point.

        Planning assumes the source host is at the utilization bound
        (the reservation exists precisely so this is the worst case).
        """
        outcome = simulate_migration(
            max(vm_memory_gb, 1e-3),
            self.assumed_dirty_rate_mb_s,
            host_cpu_util=0.7,
            host_memory_util=0.7,
            config=self.precopy,
        )
        return outcome.duration_s

    def cost_wh(self, vm_memory_gb: float) -> float:
        """Cost of migrating one VM, in watt-hours."""
        duration_s = self.migration_duration_s(vm_memory_gb)
        energy_wh = self.migration_power_watts * duration_s / 3600.0
        sla_wh = self.sla_cost_per_second * duration_s
        return energy_wh + sla_wh

    def costs_wh(self, vm_memory_gb: Sequence[float]) -> List[float]:
        """Batched :meth:`cost_wh` — one pre-copy simulation sweep.

        All migrations run through :func:`simulate_migrations` in lock
        step, so each returned cost is bit-identical to the scalar call.
        """
        if not vm_memory_gb:
            return []
        outcomes = simulate_migrations(
            [max(m, 1e-3) for m in vm_memory_gb],
            [self.assumed_dirty_rate_mb_s] * len(vm_memory_gb),
            host_cpu_util=0.7,
            host_memory_util=0.7,
            config=self.precopy,
        )
        return [
            self.migration_power_watts * o.duration_s / 3600.0
            + self.sla_cost_per_second * o.duration_s
            for o in outcomes
        ]
