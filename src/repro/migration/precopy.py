"""Pre-copy live migration simulator (paper §4.3).

"Live VM migration consists of a pre-copy phase, where the memory
allocated to a virtual machine is transferred from the source physical
server to the target ... All pages that were made dirty in a pre-copy
round are copied again in the next round.  The pre-copy completes when
either a very small number of dirty pages remain or the number of dirty
pages do not reduce between consecutive rounds."

The simulator follows that design (Clark et al. NSDI'05, Nelson et al.
ATC'05) and adds the resource-contention effects measured by Verma et
al. (CoSMig, MASCOTS'11), which the paper uses to justify the 20%
reservation rule:

* the migration daemon needs CPU headroom on the *source* host; when the
  host runs hot the copy throughput collapses,
* high memory commitment on the source inflates the effective dirty rate
  (page cache churn and ballooning fight the tracer).

A migration *fails* (is aborted by the operator or times out) when the
pre-copy cannot converge within the round and duration budgets —
"prolonged or failed live migrations, which is unacceptable in
production data centers".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "PreCopyConfig",
    "MigrationOutcome",
    "simulate_migration",
    "simulate_migrations",
]

_MB_PER_GB = 1024.0


@dataclass(frozen=True)
class PreCopyConfig:
    """Infrastructure parameters of the pre-copy implementation."""

    #: Nominal migration link bandwidth (1 GbE with TCP overhead).
    bandwidth_mb_s: float = 110.0
    #: Pre-copy stops when the dirty set falls below this (stop-and-copy).
    stop_threshold_mb: float = 64.0
    #: Give up if the dirty set shrinks by less than this factor per round.
    min_round_shrink: float = 0.95
    max_rounds: int = 30
    #: Operators abort migrations longer than this (seconds).
    max_duration_s: float = 300.0
    #: CPU fraction of the source host the migration daemon wants
    #: (Nelson et al.: ~30% of a server minimizes pre-copy time).
    cpu_demand_frac: float = 0.25
    #: Memory-commit level above which the dirty rate inflates.
    memory_pressure_knee: float = 0.85
    #: Dirty-rate multiplier at 100% memory commit.
    memory_pressure_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.bandwidth_mb_s <= 0:
            raise ConfigurationError("bandwidth_mb_s must be > 0")
        if self.stop_threshold_mb <= 0:
            raise ConfigurationError("stop_threshold_mb must be > 0")
        if not 0 < self.min_round_shrink <= 1:
            raise ConfigurationError("min_round_shrink must be in (0, 1]")
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        if self.max_duration_s <= 0:
            raise ConfigurationError("max_duration_s must be > 0")
        if not 0 < self.cpu_demand_frac < 1:
            raise ConfigurationError("cpu_demand_frac must be in (0, 1)")
        if not 0 < self.memory_pressure_knee <= 1:
            raise ConfigurationError("memory_pressure_knee must be in (0, 1]")
        if self.memory_pressure_factor < 1:
            raise ConfigurationError("memory_pressure_factor must be >= 1")


@dataclass(frozen=True)
class MigrationOutcome:
    """Result of one simulated live migration."""

    success: bool
    duration_s: float
    downtime_s: float
    rounds: int
    copied_mb: float
    vm_memory_mb: float
    effective_bandwidth_mb_s: float

    @property
    def overhead_factor(self) -> float:
        """Total bytes moved relative to the VM's active memory.

        1.0 means a single clean copy; bursty writers re-send dirty pages
        and push this well above 1.
        """
        return self.copied_mb / self.vm_memory_mb


def _effective_bandwidth(
    config: PreCopyConfig, host_cpu_util: float
) -> float:
    """Copy throughput given the source host's CPU utilization.

    The daemon needs ``cpu_demand_frac`` of the host; with less headroom
    it gets throttled proportionally (CoSMig's observed collapse above
    ~75-80% utilization).  A floor of 5% keeps the simulation finite.
    """
    headroom = max(0.0, 1.0 - host_cpu_util)
    share = min(1.0, headroom / config.cpu_demand_frac)
    return config.bandwidth_mb_s * max(share, 0.05)


def _effective_dirty_rate(
    config: PreCopyConfig, dirty_rate_mb_s: float, host_memory_util: float
) -> float:
    """Dirty rate inflated by memory pressure above the knee."""
    if host_memory_util <= config.memory_pressure_knee:
        return dirty_rate_mb_s
    over = (host_memory_util - config.memory_pressure_knee) / max(
        1.0 - config.memory_pressure_knee, 1e-9
    )
    return dirty_rate_mb_s * (1.0 + (config.memory_pressure_factor - 1.0) * min(over, 1.0))


def simulate_migration(
    vm_memory_gb: float,
    dirty_rate_mb_s: float,
    *,
    host_cpu_util: float = 0.5,
    host_memory_util: float = 0.5,
    config: PreCopyConfig = PreCopyConfig(),
) -> MigrationOutcome:
    """Simulate one pre-copy live migration.

    Parameters
    ----------
    vm_memory_gb:
        Active memory of the migrating VM (the first round copies it all).
    dirty_rate_mb_s:
        Rate at which the workload dirties pages while being copied.
    host_cpu_util / host_memory_util:
        Source-host load *excluding* the migration itself; this is what
        the reservation rule controls.
    """
    if vm_memory_gb <= 0:
        raise ConfigurationError(f"vm_memory_gb must be > 0, got {vm_memory_gb}")
    if dirty_rate_mb_s < 0:
        raise ConfigurationError("dirty_rate_mb_s must be >= 0")
    if not 0 <= host_cpu_util <= 1 or not 0 <= host_memory_util <= 1:
        raise ConfigurationError("host utilizations must be in [0, 1]")

    bandwidth = _effective_bandwidth(config, host_cpu_util)
    dirty_rate = _effective_dirty_rate(
        config, dirty_rate_mb_s, host_memory_util
    )

    to_copy_mb = vm_memory_gb * _MB_PER_GB
    elapsed_s = 0.0
    copied_mb = 0.0
    rounds = 0
    converged = False
    while rounds < config.max_rounds:
        rounds += 1
        round_time = to_copy_mb / bandwidth
        elapsed_s += round_time
        copied_mb += to_copy_mb
        dirtied_mb = dirty_rate * round_time
        if elapsed_s > config.max_duration_s:
            return MigrationOutcome(
                success=False,
                duration_s=elapsed_s,
                downtime_s=0.0,
                rounds=rounds,
                copied_mb=copied_mb,
                vm_memory_mb=vm_memory_gb * _MB_PER_GB,
                effective_bandwidth_mb_s=bandwidth,
            )
        if dirtied_mb <= config.stop_threshold_mb:
            converged = True
            to_copy_mb = dirtied_mb
            break
        if dirtied_mb > to_copy_mb * config.min_round_shrink:
            # Dirty set is not shrinking: writable working set exceeds
            # what the link can drain.  Declare non-convergence.
            to_copy_mb = dirtied_mb
            break
        to_copy_mb = dirtied_mb

    downtime_s = to_copy_mb / bandwidth
    elapsed_s += downtime_s
    copied_mb += to_copy_mb
    success = converged and elapsed_s <= config.max_duration_s
    return MigrationOutcome(
        success=success,
        duration_s=elapsed_s,
        downtime_s=downtime_s,
        rounds=rounds,
        copied_mb=copied_mb,
        vm_memory_mb=vm_memory_gb * _MB_PER_GB,
        effective_bandwidth_mb_s=bandwidth,
    )


def simulate_migrations(
    vm_memory_gb: Sequence[float],
    dirty_rate_mb_s: Sequence[float],
    *,
    host_cpu_util: Union[float, Sequence[float]] = 0.5,
    host_memory_util: Union[float, Sequence[float]] = 0.5,
    config: PreCopyConfig = PreCopyConfig(),
) -> List[MigrationOutcome]:
    """Simulate a batch of pre-copy migrations at once.

    One lane per migration; every pre-copy round advances all lanes that
    have neither converged, stalled, nor timed out, with the same IEEE-754
    elementwise operations as :func:`simulate_migration` — the outcomes
    are bit-identical to calling it in a loop.  Scalar ``host_*_util``
    values broadcast across the batch.
    """
    n = len(vm_memory_gb)
    if len(dirty_rate_mb_s) != n:
        raise ConfigurationError(
            "vm_memory_gb and dirty_rate_mb_s must have equal length"
        )
    cpu_utils = (
        [float(host_cpu_util)] * n
        if isinstance(host_cpu_util, (int, float))
        else [float(u) for u in host_cpu_util]
    )
    mem_utils = (
        [float(host_memory_util)] * n
        if isinstance(host_memory_util, (int, float))
        else [float(u) for u in host_memory_util]
    )
    if len(cpu_utils) != n or len(mem_utils) != n:
        raise ConfigurationError(
            "host utilization sequences must match vm_memory_gb length"
        )
    if n == 0:
        return []

    bandwidth_l = []
    dirty_l = []
    for memory, dirty, cpu_u, mem_u in zip(
        vm_memory_gb, dirty_rate_mb_s, cpu_utils, mem_utils
    ):
        if memory <= 0:
            raise ConfigurationError(
                f"vm_memory_gb must be > 0, got {memory}"
            )
        if dirty < 0:
            raise ConfigurationError("dirty_rate_mb_s must be >= 0")
        if not 0 <= cpu_u <= 1 or not 0 <= mem_u <= 1:
            raise ConfigurationError("host utilizations must be in [0, 1]")
        bandwidth_l.append(_effective_bandwidth(config, cpu_u))
        dirty_l.append(_effective_dirty_rate(config, dirty, mem_u))

    bandwidth = np.array(bandwidth_l)
    dirty_rate = np.array(dirty_l)
    memory_mb = np.array([m * _MB_PER_GB for m in vm_memory_gb])

    to_copy = memory_mb.copy()
    elapsed = np.zeros(n)
    copied = np.zeros(n)
    rounds = np.zeros(n, dtype=np.int64)
    converged = np.zeros(n, dtype=bool)
    timed_out = np.zeros(n, dtype=bool)
    lanes = np.arange(n)

    for _ in range(config.max_rounds):
        if lanes.size == 0:
            break
        rounds[lanes] += 1
        previous = to_copy[lanes]
        round_time = previous / bandwidth[lanes]
        elapsed[lanes] += round_time
        copied[lanes] += previous
        dirtied = dirty_rate[lanes] * round_time
        # Timed-out lanes keep their pre-round dirty set and skip the
        # stop-and-copy phase, matching the scalar early return.
        over = elapsed[lanes] > config.max_duration_s
        timed_out[lanes[over]] = True
        live = lanes[~over]
        dirtied = dirtied[~over]
        previous = previous[~over]
        to_copy[live] = dirtied
        stop = dirtied <= config.stop_threshold_mb
        converged[live[stop]] = True
        # Non-shrink exit compares against the *pre-update* dirty set —
        # what this round just copied — exactly as the scalar loop does.
        stalled = dirtied > previous * config.min_round_shrink
        lanes = live[~stop & ~stalled]

    final = ~timed_out
    downtime = np.zeros(n)
    downtime[final] = to_copy[final] / bandwidth[final]
    elapsed[final] += downtime[final]
    copied[final] += to_copy[final]
    success = converged & (elapsed <= config.max_duration_s)

    return [
        MigrationOutcome(
            success=bool(success[i]),
            duration_s=float(elapsed[i]),
            downtime_s=float(downtime[i]),
            rounds=int(rounds[i]),
            copied_mb=float(copied[i]),
            vm_memory_mb=float(memory_mb[i]),
            effective_bandwidth_mb_s=float(bandwidth[i]),
        )
        for i in range(n)
    ]
