"""Live migration: pre-copy simulation, cost model, reliability study."""

from repro.migration.cost import MigrationCostModel
from repro.migration.precopy import (
    MigrationOutcome,
    PreCopyConfig,
    simulate_migration,
    simulate_migrations,
)
from repro.migration.reliability import (
    ReliabilityPoint,
    recommended_reservation,
    reliability_sweep,
)
from repro.migration.whatif import (
    MIGRATION_VARIANTS,
    MigrationVariant,
    get_variant,
    reservation_for_variant,
    reservation_ladder,
)

__all__ = [
    "MIGRATION_VARIANTS",
    "MigrationCostModel",
    "MigrationVariant",
    "get_variant",
    "reservation_for_variant",
    "reservation_ladder",
    "MigrationOutcome",
    "PreCopyConfig",
    "ReliabilityPoint",
    "recommended_reservation",
    "reliability_sweep",
    "simulate_migration",
    "simulate_migrations",
]
