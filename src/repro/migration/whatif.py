"""What-if studies on live-migration efficiency (paper §7).

The paper's discussion singles out two research directions:

* **"Improving live migration efficiency"** — offloading the copy work
  to the target host, or out of the OS entirely (RDMA), shrinks the CPU
  the source must reserve; faster links shrink the duration.  Either
  reduces the reservation dynamic consolidation must hold, and
  Observation 7 says that reservation is exactly what keeps dynamic
  consolidation from winning on space.
* **"Enabling shorter consolidation intervals"** — handled by
  :mod:`repro.experiments.intervals`.

:data:`MIGRATION_VARIANTS` defines the technology ladder; and
:func:`reservation_for_variant` re-runs the Observation-4 reliability
study under each variant's :class:`~repro.migration.precopy.PreCopyConfig`
to get the reservation that technology would actually need.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Tuple

from repro.exceptions import ConfigurationError
from repro.migration.precopy import PreCopyConfig
from repro.migration.reliability import recommended_reservation

__all__ = [
    "MigrationVariant",
    "MIGRATION_VARIANTS",
    "reservation_for_variant",
    "reservation_ladder",
]


@dataclass(frozen=True)
class MigrationVariant:
    """One live-migration implementation technology."""

    key: str
    description: str
    config: PreCopyConfig


_BASELINE = PreCopyConfig()

MIGRATION_VARIANTS: Tuple[MigrationVariant, ...] = (
    MigrationVariant(
        key="baseline-1gbe",
        description="2012-era pre-copy over 1 GbE (the paper's setting)",
        config=_BASELINE,
    ),
    MigrationVariant(
        key="10gbe",
        description="same pre-copy implementation over a 10 GbE fabric",
        config=replace(_BASELINE, bandwidth_mb_s=1100.0),
    ),
    MigrationVariant(
        key="target-offload",
        description=(
            "copy engine pulled from the target host: the source only "
            "traces dirty pages (§7's 'offloading some of this work to "
            "the target server')"
        ),
        config=replace(_BASELINE, cpu_demand_frac=0.10),
    ),
    MigrationVariant(
        key="rdma",
        description=(
            "RDMA-based copy outside the OS: minimal source CPU and a "
            "fast fabric (§7's RDMA suggestion)"
        ),
        config=replace(
            _BASELINE, cpu_demand_frac=0.05, bandwidth_mb_s=1100.0
        ),
    ),
)

_BY_KEY: Mapping[str, MigrationVariant] = {
    v.key: v for v in MIGRATION_VARIANTS
}


def get_variant(key: str) -> MigrationVariant:
    try:
        return _BY_KEY[key]
    except KeyError:
        known = ", ".join(sorted(_BY_KEY))
        raise ConfigurationError(
            f"unknown migration variant {key!r}; known: {known}"
        ) from None


def reservation_for_variant(key: str, *, seed: int = 7) -> float:
    """Reservation the Obs.-4 reliability bar demands under a variant.

    The underlying reliability sweep batches its migration population
    through :func:`repro.migration.precopy.simulate_migrations`, so each
    variant's study is one lane-parallel simulation per load level —
    transparently, with outcomes identical to the per-call loop.
    """
    return recommended_reservation(config=get_variant(key).config, seed=seed)


def reservation_ladder(*, seed: int = 7) -> Tuple[Tuple[str, float], ...]:
    """(variant, required reservation) for the whole technology ladder.

    The baseline lands at the paper's 20%; better migration technology
    pushes the requirement down — feed the result into
    :func:`repro.experiments.sensitivity.run_sensitivity` to see how
    many servers the improvement buys (Observation 7 quantified).
    """
    return tuple(
        (variant.key, reservation_for_variant(variant.key, seed=seed))
        for variant in MIGRATION_VARIANTS
    )
