"""Vectorized per-VM stream seeding for the array generation engine.

The array engine must draw every VM's randomness from the same
``SeedSequence(seed, spawn_key=(index,))`` stream as the scalar
reference (``parent.spawn(n)[i]`` constructs exactly that child).  At
10k-100k fleet scale, constructing one ``SeedSequence`` + ``PCG64`` +
``Generator`` per VM costs ~8 us per VM — as much as the draws
themselves once the trace arithmetic is batched.  Both construction
stages are pure integer hashes, so this module batches them:

* :func:`seedseq_state_words` replays numpy's SeedSequence entropy-pool
  mix (cyclic multiplicative hashing over uint32 words) elementwise
  across the whole spawn-key vector,
* :func:`batched_pcg64_state_words` applies the PCG64 ``srandom``
  initialisation (one 128-bit LCG step) in 16-bit limb arithmetic, and
* :class:`FastSeeder` installs each precomputed 128-bit (state, inc)
  pair directly into one reused bit generator through the address that
  ``PCG64().ctypes`` publishes for C interop.

Nothing here is trusted: :func:`make_fast_seeder` proves the struct
layout by reading back a freshly seeded generator before anything is
written, verifies hashed states and draws against the reference
constructors, and every :meth:`FastSeeder.seeded_state_lists` call
spot-checks its first index.  Any mismatch returns ``None`` and the
engine falls back to reference per-VM construction, which is
bit-identical by definition.
"""

from __future__ import annotations

import ctypes
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FastSeeder",
    "batched_pcg64_state_words",
    "make_fast_seeder",
    "seedseq_state_words",
]

# SeedSequence hash constants (numpy/random/bit_generator.pyx).
_POOL_SIZE = 4
_XSHIFT = np.uint32(16)
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: PCG64's default 128-bit LCG multiplier (seeding runs one step).
_PCG64_MULT = 0x2360ED051FC65DA44385DF649FCCF645
# 128-bit values are handled as 16-bit limbs (least significant first) so
# that schoolbook products and carries stay well inside uint64.
_LIMB_COUNT = 8
_LIMB_MASK = np.uint64(0xFFFF)
_LIMB_BITS = np.uint64(16)
_MULT_LIMBS = tuple(
    (_PCG64_MULT >> (16 * i)) & 0xFFFF for i in range(_LIMB_COUNT)
)


def _entropy_words(value: int) -> List[int]:
    """``value`` as little-endian uint32 words, like numpy's SeedSequence."""
    if value < 0:
        raise ValueError("seed entropy must be non-negative")
    if value == 0:
        return [0]
    words = []
    while value > 0:
        words.append(value & _MASK32)
        value >>= 32
    return words


def seedseq_state_words(seed: int, indices: np.ndarray) -> Optional[np.ndarray]:
    """``SeedSequence(seed, spawn_key=(i,)).generate_state(8)`` for many i.

    Returns an ``(n, 8)`` uint32 array (the words PCG64 seeding consumes,
    low word first), or ``None`` when the entropy overflows the 4-word
    pool — callers then fall back to the reference constructors.
    """
    try:
        entropy = _entropy_words(int(seed))
    except (TypeError, ValueError):
        return None
    if len(entropy) > _POOL_SIZE:
        return None
    indices = np.asarray(indices, dtype=np.uint64)
    if indices.size and int(indices.max()) > _MASK32:
        return None
    n = indices.size
    # SeedSequence zero-pads the run entropy out to the pool size before
    # appending the spawn key, so spawn keys can never collide with seed
    # words; the spawn index is therefore always word ``_POOL_SIZE``.
    padded = entropy + [0] * (_POOL_SIZE - len(entropy))
    assembled = [np.full(n, word, dtype=np.uint32) for word in padded]
    assembled.append(indices.astype(np.uint32))

    # The hash constant advances across *every* call in pool-fill order,
    # exactly like the scalar implementation; the hashed value is a
    # vector over spawn keys.
    hash_const = [_INIT_A]

    def hashed(value: np.ndarray) -> np.ndarray:
        value = value ^ np.uint32(hash_const[0])
        hash_const[0] = (hash_const[0] * _MULT_A) & _MASK32
        value = value * np.uint32(hash_const[0])
        return value ^ (value >> _XSHIFT)

    def mixed(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        result = (_MIX_MULT_L * x) - (_MIX_MULT_R * y)
        return result ^ (result >> _XSHIFT)

    zero = np.zeros(n, dtype=np.uint32)
    pool = [
        hashed(assembled[i]) if i < len(assembled) else hashed(zero)
        for i in range(_POOL_SIZE)
    ]
    for src in range(_POOL_SIZE):
        for dst in range(_POOL_SIZE):
            if src != dst:
                pool[dst] = mixed(pool[dst], hashed(pool[src]))
    # Entropy beyond the pool (always at least the spawn index, given
    # the padding above) is mixed into every pool word.
    for src in range(_POOL_SIZE, len(assembled)):
        for dst in range(_POOL_SIZE):
            pool[dst] = mixed(pool[dst], hashed(assembled[src]))

    out = np.empty((n, 8), dtype=np.uint32)
    state_const = _INIT_B
    for word in range(8):
        value = pool[word % _POOL_SIZE] ^ np.uint32(state_const)
        state_const = (state_const * _MULT_B) & _MASK32
        value = value * np.uint32(state_const)
        out[:, word] = value ^ (value >> _XSHIFT)
    return out


def _to_limbs(high: np.ndarray, low: np.ndarray) -> List[np.ndarray]:
    limbs = [(low >> np.uint64(16 * i)) & _LIMB_MASK for i in range(4)]
    limbs += [(high >> np.uint64(16 * i)) & _LIMB_MASK for i in range(4)]
    return limbs


def _normalized(limbs: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Propagate carries; anything past limb 7 drops (mod 2**128)."""
    out = []
    carry = np.zeros_like(limbs[0])
    for limb in limbs:
        value = limb + carry
        out.append(value & _LIMB_MASK)
        carry = value >> _LIMB_BITS
    return out


def _add(a: Sequence[np.ndarray], b: Sequence[np.ndarray]) -> List[np.ndarray]:
    return _normalized([x + y for x, y in zip(a, b)])


def _mul_by_multiplier(limbs: Sequence[np.ndarray]) -> List[np.ndarray]:
    # Schoolbook product with the constant multiplier, keeping only the
    # low 128 bits.  Partial sums stay < 2**35, far from uint64 overflow.
    acc = [np.zeros_like(limbs[0]) for _ in range(_LIMB_COUNT)]
    for i in range(_LIMB_COUNT):
        limb = limbs[i]
        for j in range(_LIMB_COUNT - i):
            factor = _MULT_LIMBS[j]
            if factor:
                acc[i + j] = acc[i + j] + limb * np.uint64(factor)
    return _normalized(acc)


def _double_or_one(limbs: Sequence[np.ndarray]) -> List[np.ndarray]:
    doubled = _normalized([limb + limb for limb in limbs])
    doubled[0] = doubled[0] | np.uint64(1)
    return doubled


def _from_limbs(limbs: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    low = (
        limbs[0]
        | (limbs[1] << np.uint64(16))
        | (limbs[2] << np.uint64(32))
        | (limbs[3] << np.uint64(48))
    )
    high = (
        limbs[4]
        | (limbs[5] << np.uint64(16))
        | (limbs[6] << np.uint64(32))
        | (limbs[7] << np.uint64(48))
    )
    return low, high


def batched_pcg64_state_words(
    seed: int, indices: np.ndarray
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Seeded PCG64 state words for ``SeedSequence(seed, (i,))`` children.

    Returns uint64 arrays ``(state_lo, state_hi, inc_lo, inc_hi)`` equal
    to the state a fresh ``PCG64(child)`` holds after seeding, or
    ``None`` when the batched SeedSequence path is unavailable.
    """
    words = seedseq_state_words(seed, indices)
    if words is None:
        return None
    wide = words.astype(np.uint64)
    v0 = wide[:, 0] | (wide[:, 1] << np.uint64(32))
    v1 = wide[:, 2] | (wide[:, 3] << np.uint64(32))
    v2 = wide[:, 4] | (wide[:, 5] << np.uint64(32))
    v3 = wide[:, 6] | (wide[:, 7] << np.uint64(32))
    # pcg64_set_seed: initstate = (v0 << 64) | v1, initseq = (v2 << 64) | v3;
    # srandom then sets inc = (initseq << 1) | 1 and runs one LCG step from
    # initstate: state = (inc + initstate) * MULT + inc   (mod 2**128).
    initstate = _to_limbs(v0, v1)
    inc = _double_or_one(_to_limbs(v2, v3))
    state = _add(_mul_by_multiplier(_add(inc, initstate)), inc)
    state_lo, state_hi = _from_limbs(state)
    inc_lo, inc_hi = _from_limbs(inc)
    return state_lo, state_hi, inc_lo, inc_hi


class FastSeeder:
    """One reused ``Generator`` whose PCG64 state is written in place.

    ``PCG64().ctypes.state_address`` points at the bit generator's C
    struct ``{pcg64_random_t *pcg_state; int has_uint32; uint32 uinteger}``
    whose first field points at the 128-bit ``(state, inc)`` pair.
    :meth:`install` writes those four 64-bit words (plus cleared buffer
    flags) directly, which is an order of magnitude cheaper than
    assigning the ``.state`` dict for every VM.  The layout is *proved*
    before use: ``_check_layout`` reads a conventionally seeded
    generator back through the pointer and compares against its public
    ``.state`` dict, so a layout change can never cause a stray write.
    """

    def __init__(self) -> None:
        self.bit_generator = np.random.PCG64(
            np.random.SeedSequence(0xC0FFEE, spawn_key=(1,))
        )
        self.generator = np.random.Generator(self.bit_generator)
        address = int(self.bit_generator.ctypes.state_address)
        pointer = (ctypes.c_uint64 * 1).from_address(address)[0]
        self._state_words = (ctypes.c_uint64 * 4).from_address(pointer)
        self._flags = (ctypes.c_uint32 * 2).from_address(address + 8)
        if not self._check_layout():
            raise RuntimeError("PCG64 state struct layout mismatch")

    def _check_layout(self) -> bool:
        state = self.bit_generator.state["state"]
        words = self._state_words
        flags = self._flags
        return (
            words[0] == state["state"] & _MASK64
            and words[1] == state["state"] >> 64
            and words[2] == state["inc"] & _MASK64
            and words[3] == state["inc"] >> 64
            and flags[0] == self.bit_generator.state["has_uint32"]
        )

    def install(
        self, state_lo: int, state_hi: int, inc_lo: int, inc_hi: int
    ) -> None:
        words = self._state_words
        words[0] = state_lo
        words[1] = state_hi
        words[2] = inc_lo
        words[3] = inc_hi
        flags = self._flags
        flags[0] = 0
        flags[1] = 0

    def save(self) -> Tuple[int, int, int, int, int, int]:
        words = self._state_words
        flags = self._flags
        return (words[0], words[1], words[2], words[3], flags[0], flags[1])

    def restore(self, snapshot: Tuple[int, int, int, int, int, int]) -> None:
        words = self._state_words
        words[0] = snapshot[0]
        words[1] = snapshot[1]
        words[2] = snapshot[2]
        words[3] = snapshot[3]
        flags = self._flags
        flags[0] = snapshot[4]
        flags[1] = snapshot[5]

    def raw_addresses(self) -> Tuple[int, int]:
        """Addresses of the 4-word state and the buffer flags, for C code.

        The layout behind both pointers is proved by ``_check_layout``
        at construction; compiled kernels write them exactly like
        :meth:`install` does.
        """
        return ctypes.addressof(self._state_words), ctypes.addressof(
            self._flags
        )

    def seeded_state_arrays(
        self, seed: int, start: int, stop: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Install words for spawn keys ``start..stop`` as uint64 arrays.

        The first index is verified against a reference ``PCG64``; any
        mismatch (or unsupported entropy) returns ``None`` so the caller
        falls back to reference per-VM construction.
        """
        arrays = batched_pcg64_state_words(
            seed, np.arange(start, stop, dtype=np.uint64)
        )
        if arrays is None:
            return None
        if stop > start:
            self.install(
                int(arrays[0][0]),
                int(arrays[1][0]),
                int(arrays[2][0]),
                int(arrays[3][0]),
            )
            reference = np.random.PCG64(
                np.random.SeedSequence(seed, spawn_key=(int(start),))
            )
            if self.bit_generator.state != reference.state:
                return None
        return arrays

    def seeded_state_lists(
        self, seed: int, start: int, stop: int
    ) -> Optional[Tuple[List[int], List[int], List[int], List[int]]]:
        """Install words for spawn keys ``start..stop`` as python lists.

        List access is faster than numpy scalar indexing in the
        per-VM python loop; the verification matches
        :meth:`seeded_state_arrays`.
        """
        arrays = self.seeded_state_arrays(seed, start, stop)
        if arrays is None:
            return None
        return tuple(array.tolist() for array in arrays)


_SUPPORTED: Optional[bool] = None


def _verify(seeder: FastSeeder) -> bool:
    for seed, index in ((0, 1), (11, 5), (123456789123456789, 40001)):
        lists = seeder.seeded_state_lists(seed, index, index + 1)
        if lists is None:
            return False
        seeder.install(lists[0][0], lists[1][0], lists[2][0], lists[3][0])
        reference = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence(seed, spawn_key=(index,)))
        )
        if not np.array_equal(
            seeder.generator.standard_normal(8), reference.standard_normal(8)
        ):
            return False
        # integers() exercises the buffered-uint32 path install must clear.
        if int(seeder.generator.integers(0, 1000)) != int(
            reference.integers(0, 1000)
        ):
            return False
    return True


def make_fast_seeder() -> Optional[FastSeeder]:
    """A verified :class:`FastSeeder`, or ``None`` when unsupported.

    The memo is a pure capability probe: the fast path and the spawn
    fallback are bit-identical, so cached task outputs never depend on
    which one a process ends up using.
    """
    global _SUPPORTED
    if _SUPPORTED is False:
        return None
    try:
        seeder = FastSeeder()
        if _SUPPORTED is None:
            _SUPPORTED = _verify(seeder)  # repro-lint: disable=REPRO111
    except Exception:  # pragma: no cover - depends on numpy internals
        _SUPPORTED = False  # repro-lint: disable=REPRO111
        return None
    return seeder if _SUPPORTED else None
