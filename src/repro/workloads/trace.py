"""Resource trace data structures.

The unit of monitoring data in the paper is an hourly average per server,
for the most recent 30 days, of CPU and memory usage (Section 3.1).  We
model that as:

* :class:`ResourceTrace` — one metric over time (a numpy vector plus its
  sampling interval and unit),
* :class:`ServerTrace` — one consolidation candidate: its VM identity,
  the source server's hardware spec, and its CPU + memory traces,
* :class:`TraceSet` — all candidates of one datacenter, with uniform
  trace length, supporting time-window slicing (history vs evaluation)
  and aggregate demand queries.

CPU is stored as a utilization fraction of the *source* server and is
converted to absolute RPE2 demand through the source spec; memory is
stored directly in GB (the paper reports memory demand in absolute units).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TraceError
from repro.infrastructure.server import ServerSpec
from repro.infrastructure.vm import VirtualMachine
from repro.workloads.store import TraceStore

__all__ = ["ResourceTrace", "ServerTrace", "TraceSet", "HOURS_PER_DAY"]

HOURS_PER_DAY = 24


def _memoized(fn):
    """Wrap a zero-arg callable so it runs at most once (shared result).

    Store-first trace sets hand the same deferred VM-spec builder to
    every ``window``/``subset`` child; memoizing here keeps the builder
    from re-running once any of them materializes.
    """
    cache: List[object] = []

    def call() -> object:
        if not cache:
            cache.append(fn())
        return cache[0]

    return call


def _as_trace_array(values: Sequence[float], what: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise TraceError(f"{what}: trace must be 1-D, got shape {array.shape}")
    if array.size == 0:
        raise TraceError(f"{what}: trace must be non-empty")
    if not np.all(np.isfinite(array)):
        raise TraceError(f"{what}: trace contains NaN or Inf")
    if np.any(array < 0):
        raise TraceError(f"{what}: trace contains negative values")
    return array


@dataclass(frozen=True)
class ResourceTrace:
    """A single metric sampled at a fixed interval.

    Attributes
    ----------
    values:
        Sampled values, one per interval.  Immutable by convention: the
        array's writeable flag is cleared on construction.
    interval_hours:
        Sampling interval (1.0 for the paper's hourly aggregates).
    unit:
        Unit label for reports ("fraction", "GB", "rpe2", ...).
    """

    values: np.ndarray
    interval_hours: float = 1.0
    unit: str = ""

    def __post_init__(self) -> None:
        array = _as_trace_array(self.values, f"ResourceTrace[{self.unit}]")
        if self.interval_hours <= 0:
            raise TraceError(
                f"interval_hours must be > 0, got {self.interval_hours}"
            )
        # Defensive copy only when the caller could still mutate the
        # array through an alias: a writable input that asarray passed
        # through unchanged.  Read-only inputs (e.g. slices of another
        # frozen trace — every window() call) and arrays freshly
        # converted from sequences are safe to adopt as views.
        if array is self.values and array.flags.writeable:
            array = array.copy()
        if array.flags.writeable:
            array.flags.writeable = False
        object.__setattr__(self, "values", array)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def duration_hours(self) -> float:
        return len(self) * self.interval_hours

    def window(self, start_hour: float, end_hour: float) -> "ResourceTrace":
        """Slice the trace to ``[start_hour, end_hour)``.

        Bounds must align to sample boundaries; misaligned windows are a
        caller bug and raise :class:`TraceError`.
        """
        start_index = start_hour / self.interval_hours
        end_index = end_hour / self.interval_hours
        if start_index != int(start_index) or end_index != int(end_index):
            raise TraceError(
                f"window [{start_hour}, {end_hour}) does not align to "
                f"{self.interval_hours}h samples"
            )
        i, j = int(start_index), int(end_index)
        if not (0 <= i < j <= len(self)):
            raise TraceError(
                f"window [{start_hour}, {end_hour})h out of range for a "
                f"{self.duration_hours}h trace"
            )
        return ResourceTrace(
            values=self.values[i:j],
            interval_hours=self.interval_hours,
            unit=self.unit,
        )

    def mean(self) -> float:
        return float(self.values.mean())

    def peak(self) -> float:
        return float(self.values.max())

    def percentile(self, q: float) -> float:
        if not 0 <= q <= 100:
            raise TraceError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.values, q))


@dataclass(frozen=True)
class ServerTrace:
    """One consolidation candidate: identity, source hardware, demand.

    Attributes
    ----------
    vm:
        The virtual machine this source server becomes.
    source_spec:
        Hardware of the source physical server.  CPU utilization fractions
        are relative to this spec.
    cpu_util:
        CPU utilization fraction trace (0..1 on the source box).
    memory_gb:
        Memory demand trace in GB.
    """

    vm: VirtualMachine
    source_spec: ServerSpec
    cpu_util: ResourceTrace
    memory_gb: ResourceTrace

    def __post_init__(self) -> None:
        if len(self.cpu_util) != len(self.memory_gb):
            raise TraceError(
                f"{self.vm.vm_id}: CPU trace has {len(self.cpu_util)} points "
                f"but memory trace has {len(self.memory_gb)}"
            )
        if self.cpu_util.interval_hours != self.memory_gb.interval_hours:
            raise TraceError(
                f"{self.vm.vm_id}: CPU and memory traces have different "
                "sampling intervals"
            )

    @property
    def vm_id(self) -> str:
        return self.vm.vm_id

    @property
    def interval_hours(self) -> float:
        return self.cpu_util.interval_hours

    def __len__(self) -> int:
        return len(self.cpu_util)

    @property
    def cpu_rpe2(self) -> np.ndarray:
        """Absolute CPU demand in RPE2 units (util × source capacity)."""
        return self.cpu_util.values * self.source_spec.cpu_rpe2

    def window(self, start_hour: float, end_hour: float) -> "ServerTrace":
        return ServerTrace(
            vm=self.vm,
            source_spec=self.source_spec,
            cpu_util=self.cpu_util.window(start_hour, end_hour),
            memory_gb=self.memory_gb.window(start_hour, end_hour),
        )


@dataclass
class TraceSet:
    """All consolidation candidates of one datacenter.

    All member traces must have the same length and sampling interval so
    that aggregate (cross-server, per-timestep) queries are well defined.

    Bulk queries are served by a cached columnar :class:`TraceStore`
    (built lazily on first use, invalidated by :meth:`add`), so repeated
    matrix/aggregate calls cost one build instead of one ``vstack`` per
    call.
    """

    name: str
    _traces: List[ServerTrace] = field(default_factory=list)
    _by_id: Dict[str, ServerTrace] = field(default_factory=dict)
    _store: Optional[TraceStore] = field(
        default=None, repr=False, compare=False
    )
    #: Deferred per-VM identities for a store-first set: a callable (or
    #: its resolved list) of ``(VirtualMachine, ServerSpec)`` pairs, one
    #: per store row.  ``None`` once materialized (or for eager sets).
    _pending: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        traces, self._traces = list(self._traces), []
        self._by_id = {}
        self._store = None
        self._pending = None
        for trace in traces:
            self.add(trace)

    @classmethod
    def from_store(
        cls, name: str, store: TraceStore, vm_specs: object
    ) -> "TraceSet":
        """Build a set served by a columnar store, materializing lazily.

        ``vm_specs`` is a list of ``(VirtualMachine, ServerSpec)`` pairs
        aligned with the store rows, or a zero-argument callable
        returning one (resolved at most once, on first need).  Bulk
        matrix/aggregate queries, ``window``, and ``subset`` are served
        straight from the store; per-trace objects are only created when
        something iterates or looks up an individual trace.
        """
        trace_set = cls(name=name)
        if callable(vm_specs):
            vm_specs = _memoized(vm_specs)
        trace_set._store = store
        trace_set._pending = vm_specs
        return trace_set

    def _pending_pairs(self) -> List[Tuple[VirtualMachine, ServerSpec]]:
        if callable(self._pending):
            self._pending = self._pending()
        pairs = list(self._pending)
        if len(pairs) != self._store.n_servers:
            raise TraceError(
                f"{self.name!r}: {len(pairs)} VM specs for "
                f"{self._store.n_servers} store rows"
            )
        return pairs

    def _ensure_traces(self) -> None:
        """Materialize per-trace objects from the backing store."""
        if self._pending is None:
            return
        pairs = self._pending_pairs()
        store = self._store
        self._pending = None
        for row, (vm, spec) in enumerate(pairs):
            # Store rows are read-only views, so ResourceTrace adopts
            # them without copying the demand data.
            trace = ServerTrace(
                vm=vm,
                source_spec=spec,
                cpu_util=ResourceTrace(
                    values=store.cpu_util[row],
                    interval_hours=store.interval_hours,
                    unit="fraction",
                ),
                memory_gb=ResourceTrace(
                    values=store.memory_gb[row],
                    interval_hours=store.interval_hours,
                    unit="GB",
                ),
            )
            self._traces.append(trace)
            self._by_id[trace.vm_id] = trace

    def __getstate__(self) -> Dict[str, object]:
        # Pending callables close over generator state and do not
        # pickle; materialize before any serialization (runner caches
        # pickle trace sets).
        self._ensure_traces()
        return self.__dict__

    def add(self, trace: ServerTrace) -> None:
        self._ensure_traces()
        if trace.vm_id in self._by_id:
            raise TraceError(f"duplicate vm_id {trace.vm_id!r} in {self.name!r}")
        if self._traces:
            first = self._traces[0]
            if len(trace) != len(first):
                raise TraceError(
                    f"{trace.vm_id}: length {len(trace)} != set length "
                    f"{len(first)}"
                )
            if trace.interval_hours != first.interval_hours:
                raise TraceError(
                    f"{trace.vm_id}: interval {trace.interval_hours}h != set "
                    f"interval {first.interval_hours}h"
                )
        self._traces.append(trace)
        self._by_id[trace.vm_id] = trace
        self._store = None

    @property
    def store(self) -> TraceStore:
        """The cached columnar backing store (built on first access)."""
        if self._store is None:
            if not self._traces:
                raise TraceError(f"trace set {self.name!r} is empty")
            self._store = TraceStore.from_traces(self._traces)
        return self._store

    @property
    def traces(self) -> Tuple[ServerTrace, ...]:
        self._ensure_traces()
        return tuple(self._traces)

    def trace(self, vm_id: str) -> ServerTrace:
        self._ensure_traces()
        try:
            return self._by_id[vm_id]
        except KeyError:
            raise TraceError(f"unknown vm_id {vm_id!r} in {self.name!r}") from None

    def __len__(self) -> int:
        if self._pending is not None:
            return self._store.n_servers
        return len(self._traces)

    def __iter__(self) -> Iterator[ServerTrace]:
        self._ensure_traces()
        return iter(self._traces)

    def __contains__(self, vm_id: object) -> bool:
        if self._pending is not None:
            try:
                self._store.row_of(vm_id)  # type: ignore[arg-type]
            except TraceError:
                return False
            return True
        return vm_id in self._by_id

    @property
    def vm_ids(self) -> Tuple[str, ...]:
        if self._pending is not None:
            return tuple(self._store.vm_ids)
        return tuple(t.vm_id for t in self._traces)

    @property
    def n_points(self) -> int:
        if self._pending is not None:
            return self._store.n_points
        if not self._traces:
            raise TraceError(f"trace set {self.name!r} is empty")
        return len(self._traces[0])

    @property
    def interval_hours(self) -> float:
        if self._pending is not None:
            return self._store.interval_hours
        if not self._traces:
            raise TraceError(f"trace set {self.name!r} is empty")
        return self._traces[0].interval_hours

    @property
    def duration_hours(self) -> float:
        return self.n_points * self.interval_hours

    def window(self, start_hour: float, end_hour: float) -> "TraceSet":
        """Slice every trace to ``[start_hour, end_hour)``.

        Per-trace slices are read-only views (no demand data is copied),
        and an already-built columnar store is propagated as a zero-copy
        column slice instead of being rebuilt by the child.
        """
        if self._pending is not None:
            interval = self._store.interval_hours
            start_index = start_hour / interval
            end_index = end_hour / interval
            if start_index != int(start_index) or end_index != int(end_index):
                raise TraceError(
                    f"window [{start_hour}, {end_hour}) does not align to "
                    f"{interval}h samples"
                )
            i, j = int(start_index), int(end_index)
            if not (0 <= i < j <= self._store.n_points):
                raise TraceError(
                    f"window [{start_hour}, {end_hour})h out of range for a "
                    f"{self._store.n_points * interval}h trace"
                )
            child = TraceSet(name=self.name)
            child._store = self._store.window(i, j)
            child._pending = self._pending
            return child
        child = TraceSet(
            name=self.name,
            _traces=[t.window(start_hour, end_hour) for t in self._traces],
        )
        if self._store is not None and self._traces:
            start_index = int(start_hour / self.interval_hours)
            end_index = int(end_hour / self.interval_hours)
            child._store = self._store.window(start_index, end_index)
        return child

    def subset(self, vm_ids: Iterable[str]) -> "TraceSet":
        """Restrict to the given VMs (order follows ``vm_ids``)."""
        selected = list(vm_ids)
        if self._pending is not None:
            pairs = self._pending_pairs()
            by_id = {pair[0].vm_id: pair for pair in pairs}
            for vm_id in selected:
                if vm_id not in by_id:
                    raise TraceError(
                        f"unknown vm_id {vm_id!r} in {self.name!r}"
                    )
            child = TraceSet(name=self.name)
            if selected:
                child._store = self._store.take(selected)
                child._pending = [by_id[v] for v in selected]
            return child
        child = TraceSet(
            name=self.name, _traces=[self.trace(v) for v in selected]
        )
        if self._store is not None and selected:
            child._store = self._store.take(selected)
        return child

    def cpu_util_matrix(self) -> np.ndarray:
        """(n_servers, n_points) read-only matrix of CPU utilization."""
        return self.store.cpu_util

    def cpu_rpe2_matrix(self) -> np.ndarray:
        """(n_servers, n_points) read-only matrix of CPU demand in RPE2."""
        return self.store.cpu_rpe2

    def memory_gb_matrix(self) -> np.ndarray:
        """(n_servers, n_points) read-only matrix of memory demand in GB."""
        return self.store.memory_gb

    def aggregate_cpu_rpe2(self) -> np.ndarray:
        """Total CPU demand across all servers, per timestep (RPE2)."""
        return self.store.cpu_rpe2.sum(axis=0)

    def aggregate_memory_gb(self) -> np.ndarray:
        """Total memory demand across all servers, per timestep (GB)."""
        return self.store.memory_gb.sum(axis=0)

    def mean_cpu_utilization(self) -> float:
        """Mean CPU utilization fraction across servers and time (Table 2)."""
        return float(np.mean(self.store.cpu_util.mean(axis=1)))

    def per_vm_mean_cpu_util(self) -> np.ndarray:
        """Per-VM mean CPU utilization fraction, in trace order."""
        return self.store.cpu_util.mean(axis=1)

    def per_vm_peak_cpu_rpe2(self) -> np.ndarray:
        """Per-VM peak absolute CPU demand (RPE2), in trace order."""
        return self.store.cpu_rpe2.max(axis=1)

    def per_vm_mean_memory_gb(self) -> np.ndarray:
        """Per-VM mean memory demand (GB), in trace order."""
        return self.store.memory_gb.mean(axis=1)
