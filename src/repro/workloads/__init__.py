"""Workload traces: data structures, generators, and datacenter presets."""

from repro.workloads.appmodel import OLIO_MODEL, AppResourceModel
from repro.workloads.datacenters import (
    ALL_DATACENTERS,
    BANKING,
    BEVERAGE,
    AIRLINES,
    NATURAL_RESOURCES,
    STUDY_DAYS,
    ClassGroup,
    DatacenterConfig,
    generate_datacenter,
    get_datacenter_config,
)
from repro.workloads.generator import (
    IDLE,
    SCHEDULED_BATCH,
    STEADY_BATCH,
    WEB_BURSTY,
    WEB_MODERATE,
    CorrelationModel,
    CpuModel,
    MemoryModel,
    ScheduledJobSpec,
    WorkloadClassProfile,
    generate_server_trace,
    generate_trace_set,
)
from repro.workloads.io import load_trace_set, save_trace_set
from repro.workloads.rolling import RollingTraceStore
from repro.workloads.store import TraceStore
from repro.workloads.trace import (
    HOURS_PER_DAY,
    ResourceTrace,
    ServerTrace,
    TraceSet,
)

__all__ = [
    "ALL_DATACENTERS",
    "AIRLINES",
    "AppResourceModel",
    "BANKING",
    "BEVERAGE",
    "ClassGroup",
    "CorrelationModel",
    "CpuModel",
    "DatacenterConfig",
    "HOURS_PER_DAY",
    "IDLE",
    "MemoryModel",
    "NATURAL_RESOURCES",
    "OLIO_MODEL",
    "ResourceTrace",
    "RollingTraceStore",
    "SCHEDULED_BATCH",
    "STEADY_BATCH",
    "STUDY_DAYS",
    "ScheduledJobSpec",
    "ServerTrace",
    "TraceSet",
    "TraceStore",
    "WEB_BURSTY",
    "WEB_MODERATE",
    "WorkloadClassProfile",
    "generate_datacenter",
    "generate_server_trace",
    "generate_trace_set",
    "get_datacenter_config",
    "load_trace_set",
    "save_trace_set",
]
