"""Statistical building blocks for synthetic enterprise workload traces.

The trace generators compose these primitives to reproduce the workload
properties the paper measures in Section 4:

* diurnal business-hour cycles and weekend dips (:func:`diurnal_profile`,
  :func:`weekly_profile`) — the medium-term variation semi-static
  consolidation exploits,
* multiplicative lognormal burstiness and additive Pareto spikes
  (:func:`lognormal_noise`, :func:`pareto_spikes`) — the heavy-tailed
  short-term variation dynamic consolidation exploits (web workloads),
* autocorrelated AR(1) fluctuation (:func:`ar1_noise`) — the smooth load
  evolution of steady batch/compute workloads,
* scheduled batch windows (:func:`scheduled_jobs`) — nightly/periodic
  jobs with high but predictable peaks,
* :func:`ewma_smooth` — the slow response of memory to load that makes
  memory an order of magnitude less bursty than CPU (Observation 2).

All functions are deterministic given a :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.numerics import approx_eq
from repro.workloads.trace import HOURS_PER_DAY

__all__ = [
    "hour_of_day",
    "day_of_week",
    "diurnal_profile",
    "weekly_profile",
    "lognormal_noise",
    "ar1_noise",
    "pareto_spikes",
    "scheduled_jobs",
    "ewma_smooth",
]

HOURS_PER_WEEK = 7 * HOURS_PER_DAY


def hour_of_day(n_hours: int, start_hour: int = 0) -> np.ndarray:
    """Hour-of-day (0..23) for each of ``n_hours`` consecutive hours."""
    if n_hours <= 0:
        raise ConfigurationError(f"n_hours must be > 0, got {n_hours}")
    return (np.arange(n_hours) + start_hour) % HOURS_PER_DAY


def day_of_week(n_hours: int, start_hour: int = 0) -> np.ndarray:
    """Day-of-week (0=Mon .. 6=Sun) for each hour."""
    if n_hours <= 0:
        raise ConfigurationError(f"n_hours must be > 0, got {n_hours}")
    return ((np.arange(n_hours) + start_hour) // HOURS_PER_DAY) % 7


def diurnal_profile(
    n_hours: int,
    *,
    peak_hour: float = 14.0,
    amplitude: float = 1.0,
    width_hours: float = 4.0,
    start_hour: int = 0,
) -> np.ndarray:
    """Multiplicative business-hours bump, mean-one-ish baseline of 1.

    The profile is ``1 + amplitude * exp(-d^2 / (2 width^2))`` where ``d``
    is the circular distance to ``peak_hour``.  ``amplitude=0`` yields a
    flat profile.
    """
    if amplitude < 0:
        raise ConfigurationError(f"amplitude must be >= 0, got {amplitude}")
    if width_hours <= 0:
        raise ConfigurationError(f"width_hours must be > 0, got {width_hours}")
    hod = hour_of_day(n_hours, start_hour).astype(float)
    distance = np.abs(hod - peak_hour)
    distance = np.minimum(distance, HOURS_PER_DAY - distance)
    return 1.0 + amplitude * np.exp(-(distance**2) / (2.0 * width_hours**2))


def weekly_profile(
    n_hours: int, *, weekend_factor: float = 0.5, start_hour: int = 0
) -> np.ndarray:
    """Weekday = 1.0, weekend (Sat/Sun) = ``weekend_factor``."""
    if weekend_factor < 0:
        raise ConfigurationError(
            f"weekend_factor must be >= 0, got {weekend_factor}"
        )
    dow = day_of_week(n_hours, start_hour)
    profile = np.ones(n_hours)
    profile[dow >= 5] = weekend_factor
    return profile


def lognormal_noise(
    n_hours: int, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Mean-one multiplicative lognormal noise.

    ``sigma`` is the log-space standard deviation; the mean correction
    ``-sigma^2/2`` keeps E[noise] = 1 so it does not shift the trace mean.
    Web workloads use sigma around 1 (heavy-tailed, CoV >= 1, Obs. 1);
    steady batch uses sigma well below 1.
    """
    if sigma < 0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return np.ones(n_hours)
    return rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=n_hours)


def ar1_noise(
    n_hours: int,
    phi: float,
    sigma: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Zero-mean AR(1) series: x[t] = phi * x[t-1] + eps, eps ~ N(0, sigma).

    The series is started from its stationary distribution so there is no
    burn-in transient.
    """
    if not -1.0 < phi < 1.0:
        raise ConfigurationError(f"phi must be in (-1, 1), got {phi}")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return np.zeros(n_hours)
    stationary_std = sigma / np.sqrt(1.0 - phi**2)
    x = np.empty(n_hours)
    x[0] = rng.normal(0.0, stationary_std)
    shocks = rng.normal(0.0, sigma, size=n_hours - 1)
    for t in range(1, n_hours):
        x[t] = phi * x[t - 1] + shocks[t - 1]
    return x


def pareto_spikes(
    n_hours: int,
    *,
    rate_per_hour: float,
    alpha: float,
    scale: float,
    max_spike: float,
    rng: np.random.Generator,
    max_duration_hours: int = 3,
) -> np.ndarray:
    """Sparse additive load spikes with Pareto-distributed magnitude.

    Spike arrivals are Poisson with the given hourly rate; each spike has
    magnitude ``min(scale * pareto(alpha), max_spike)`` and lasts 1 to
    ``max_duration_hours`` hours (uniform), decaying linearly.  This is
    the mechanism behind the extreme peak-to-average ratios of the
    Banking workload (>10 for 30% of servers at 1 h intervals).
    """
    if rate_per_hour < 0:
        raise ConfigurationError(
            f"rate_per_hour must be >= 0, got {rate_per_hour}"
        )
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be > 0, got {alpha}")
    if scale < 0 or max_spike < 0:
        raise ConfigurationError("scale and max_spike must be >= 0")
    if max_duration_hours < 1:
        raise ConfigurationError(
            f"max_duration_hours must be >= 1, got {max_duration_hours}"
        )
    spikes = np.zeros(n_hours)
    if rate_per_hour == 0 or scale == 0:
        return spikes
    n_spikes = rng.poisson(rate_per_hour * n_hours)
    if n_spikes == 0:
        return spikes
    starts = rng.integers(0, n_hours, size=n_spikes)
    magnitudes = np.minimum(scale * rng.pareto(alpha, size=n_spikes), max_spike)
    durations = rng.integers(1, max_duration_hours + 1, size=n_spikes)
    for start, magnitude, duration in zip(starts, magnitudes, durations):
        for offset in range(duration):
            t = start + offset
            if t >= n_hours:
                break
            decay = 1.0 - offset / duration
            spikes[t] = max(spikes[t], magnitude * decay)
    return spikes


def scheduled_jobs(
    n_hours: int,
    *,
    period_hours: int,
    start_hour: int,
    duration_hours: int,
    level: float,
    jitter_hours: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Additive load from periodically scheduled batch jobs.

    Example: nightly payroll at 02:00 for 2 hours at 40% extra load is
    ``period_hours=24, start_hour=2, duration_hours=2, level=0.4``.
    ``jitter_hours`` shifts each occurrence by a uniform ±jitter, which is
    what makes "predictable" batch peaks imperfectly predictable.
    """
    if period_hours <= 0:
        raise ConfigurationError(f"period_hours must be > 0, got {period_hours}")
    if duration_hours <= 0:
        raise ConfigurationError(
            f"duration_hours must be > 0, got {duration_hours}"
        )
    if level < 0:
        raise ConfigurationError(f"level must be >= 0, got {level}")
    if jitter_hours < 0:
        raise ConfigurationError(f"jitter_hours must be >= 0, got {jitter_hours}")
    if jitter_hours > 0 and rng is None:
        raise ConfigurationError("jitter_hours > 0 requires an rng")
    load = np.zeros(n_hours)
    occurrence = start_hour % period_hours
    while occurrence < n_hours:
        begin = occurrence
        if jitter_hours > 0:
            assert rng is not None
            begin += int(rng.integers(-jitter_hours, jitter_hours + 1))
        for t in range(max(begin, 0), min(begin + duration_hours, n_hours)):
            load[t] = max(load[t], level)
        occurrence += period_hours
    return load


def ewma_smooth(values: np.ndarray, alpha: float) -> np.ndarray:
    """Exponentially weighted moving average with smoothing factor alpha.

    ``alpha`` is the weight of the *new* observation: 1.0 returns the
    input unchanged, small values respond slowly.  Used to model memory's
    sluggish response to load (committed memory does not spike and drop
    with each request burst the way CPU does).
    """
    if not 0 < alpha <= 1:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ConfigurationError("ewma_smooth expects a 1-D array")
    if approx_eq(alpha, 1.0):
        return values.copy()
    smoothed = np.empty_like(values)
    smoothed[0] = values[0]
    for t in range(1, values.size):
        smoothed[t] = alpha * values[t] + (1.0 - alpha) * smoothed[t - 1]
    return smoothed
