"""Statistical building blocks for synthetic enterprise workload traces.

The trace generators compose these primitives to reproduce the workload
properties the paper measures in Section 4:

* diurnal business-hour cycles and weekend dips (:func:`diurnal_profile`,
  :func:`weekly_profile`) — the medium-term variation semi-static
  consolidation exploits,
* multiplicative lognormal burstiness and additive Pareto spikes
  (:func:`lognormal_noise`, :func:`pareto_spikes`) — the heavy-tailed
  short-term variation dynamic consolidation exploits (web workloads),
* autocorrelated AR(1) fluctuation (:func:`ar1_noise`) — the smooth load
  evolution of steady batch/compute workloads,
* scheduled batch windows (:func:`scheduled_jobs`) — nightly/periodic
  jobs with high but predictable peaks,
* :func:`ewma_smooth` — the slow response of memory to load that makes
  memory an order of magnitude less bursty than CPU (Observation 2).

All functions are deterministic given a :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

try:  # SciPy ships with the toolchain; gate anyway so the batched
    # engine degrades to the (bit-identical) column-stepped recurrence
    # instead of failing to import.
    from scipy.signal import lfilter as _lfilter
except ImportError:  # pragma: no cover - scipy present in CI image
    _lfilter = None

from repro.exceptions import ConfigurationError
from repro.numerics import approx_eq
from repro.workloads.trace import HOURS_PER_DAY

__all__ = [
    "hour_of_day",
    "day_of_week",
    "diurnal_profile",
    "diurnal_profile_matrix",
    "weekly_profile",
    "lognormal_noise",
    "ar1_noise",
    "ar1_filter_matrix",
    "pareto_spikes",
    "pareto_spike_matrix",
    "scheduled_jobs",
    "scheduled_job_matrix",
    "ewma_smooth",
    "ewma_smooth_matrix",
]

HOURS_PER_WEEK = 7 * HOURS_PER_DAY


def hour_of_day(n_hours: int, start_hour: int = 0) -> np.ndarray:
    """Hour-of-day (0..23) for each of ``n_hours`` consecutive hours."""
    if n_hours <= 0:
        raise ConfigurationError(f"n_hours must be > 0, got {n_hours}")
    return (np.arange(n_hours) + start_hour) % HOURS_PER_DAY


def day_of_week(n_hours: int, start_hour: int = 0) -> np.ndarray:
    """Day-of-week (0=Mon .. 6=Sun) for each hour."""
    if n_hours <= 0:
        raise ConfigurationError(f"n_hours must be > 0, got {n_hours}")
    return ((np.arange(n_hours) + start_hour) // HOURS_PER_DAY) % 7


def diurnal_profile(
    n_hours: int,
    *,
    peak_hour: float = 14.0,
    amplitude: float = 1.0,
    width_hours: float = 4.0,
    start_hour: int = 0,
) -> np.ndarray:
    """Multiplicative business-hours bump, mean-one-ish baseline of 1.

    The profile is ``1 + amplitude * exp(-d^2 / (2 width^2))`` where ``d``
    is the circular distance to ``peak_hour``.  ``amplitude=0`` yields a
    flat profile.
    """
    if amplitude < 0:
        raise ConfigurationError(f"amplitude must be >= 0, got {amplitude}")
    if width_hours <= 0:
        raise ConfigurationError(f"width_hours must be > 0, got {width_hours}")
    hod = hour_of_day(n_hours, start_hour).astype(float)
    distance = np.abs(hod - peak_hour)
    distance = np.minimum(distance, HOURS_PER_DAY - distance)
    return 1.0 + amplitude * np.exp(-(distance**2) / (2.0 * width_hours**2))


def weekly_profile(
    n_hours: int, *, weekend_factor: float = 0.5, start_hour: int = 0
) -> np.ndarray:
    """Weekday = 1.0, weekend (Sat/Sun) = ``weekend_factor``."""
    if weekend_factor < 0:
        raise ConfigurationError(
            f"weekend_factor must be >= 0, got {weekend_factor}"
        )
    dow = day_of_week(n_hours, start_hour)
    profile = np.ones(n_hours)
    profile[dow >= 5] = weekend_factor
    return profile


def lognormal_noise(
    n_hours: int, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Mean-one multiplicative lognormal noise.

    ``sigma`` is the log-space standard deviation; the mean correction
    ``-sigma^2/2`` keeps E[noise] = 1 so it does not shift the trace mean.
    Web workloads use sigma around 1 (heavy-tailed, CoV >= 1, Obs. 1);
    steady batch uses sigma well below 1.
    """
    if sigma < 0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return np.ones(n_hours)
    return rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=n_hours)


def ar1_noise(
    n_hours: int,
    phi: float,
    sigma: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Zero-mean AR(1) series: x[t] = phi * x[t-1] + eps, eps ~ N(0, sigma).

    The series is started from its stationary distribution so there is no
    burn-in transient.
    """
    if not -1.0 < phi < 1.0:
        raise ConfigurationError(f"phi must be in (-1, 1), got {phi}")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return np.zeros(n_hours)
    stationary_std = sigma / np.sqrt(1.0 - phi**2)
    x = np.empty(n_hours)
    x[0] = rng.normal(0.0, stationary_std)
    shocks = rng.normal(0.0, sigma, size=n_hours - 1)
    for t in range(1, n_hours):
        x[t] = phi * x[t - 1] + shocks[t - 1]
    return x


def pareto_spikes(
    n_hours: int,
    *,
    rate_per_hour: float,
    alpha: float,
    scale: float,
    max_spike: float,
    rng: np.random.Generator,
    max_duration_hours: int = 3,
) -> np.ndarray:
    """Sparse additive load spikes with Pareto-distributed magnitude.

    Spike arrivals are Poisson with the given hourly rate; each spike has
    magnitude ``min(scale * pareto(alpha), max_spike)`` and lasts 1 to
    ``max_duration_hours`` hours (uniform), decaying linearly.  This is
    the mechanism behind the extreme peak-to-average ratios of the
    Banking workload (>10 for 30% of servers at 1 h intervals).
    """
    if rate_per_hour < 0:
        raise ConfigurationError(
            f"rate_per_hour must be >= 0, got {rate_per_hour}"
        )
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be > 0, got {alpha}")
    if scale < 0 or max_spike < 0:
        raise ConfigurationError("scale and max_spike must be >= 0")
    if max_duration_hours < 1:
        raise ConfigurationError(
            f"max_duration_hours must be >= 1, got {max_duration_hours}"
        )
    spikes = np.zeros(n_hours)
    if rate_per_hour == 0 or scale == 0:
        return spikes
    n_spikes = rng.poisson(rate_per_hour * n_hours)
    if n_spikes == 0:
        return spikes
    starts = rng.integers(0, n_hours, size=n_spikes)
    magnitudes = np.minimum(scale * rng.pareto(alpha, size=n_spikes), max_spike)
    durations = rng.integers(1, max_duration_hours + 1, size=n_spikes)
    for start, magnitude, duration in zip(starts, magnitudes, durations):
        for offset in range(duration):
            t = start + offset
            if t >= n_hours:
                break
            decay = 1.0 - offset / duration
            spikes[t] = max(spikes[t], magnitude * decay)
    return spikes


def scheduled_jobs(
    n_hours: int,
    *,
    period_hours: int,
    start_hour: int,
    duration_hours: int,
    level: float,
    jitter_hours: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Additive load from periodically scheduled batch jobs.

    Example: nightly payroll at 02:00 for 2 hours at 40% extra load is
    ``period_hours=24, start_hour=2, duration_hours=2, level=0.4``.
    ``jitter_hours`` shifts each occurrence by a uniform ±jitter, which is
    what makes "predictable" batch peaks imperfectly predictable.
    """
    if period_hours <= 0:
        raise ConfigurationError(f"period_hours must be > 0, got {period_hours}")
    if duration_hours <= 0:
        raise ConfigurationError(
            f"duration_hours must be > 0, got {duration_hours}"
        )
    if level < 0:
        raise ConfigurationError(f"level must be >= 0, got {level}")
    if jitter_hours < 0:
        raise ConfigurationError(f"jitter_hours must be >= 0, got {jitter_hours}")
    if jitter_hours > 0 and rng is None:
        raise ConfigurationError("jitter_hours > 0 requires an rng")
    load = np.zeros(n_hours)
    occurrence = start_hour % period_hours
    while occurrence < n_hours:
        begin = occurrence
        if jitter_hours > 0:
            assert rng is not None
            begin += int(rng.integers(-jitter_hours, jitter_hours + 1))
        for t in range(max(begin, 0), min(begin + duration_hours, n_hours)):
            load[t] = max(load[t], level)
        occurrence += period_hours
    return load


def diurnal_profile_matrix(
    n_hours: int,
    peak_hours: np.ndarray,
    *,
    amplitude: float = 1.0,
    width_hours: float = 4.0,
    start_hour: int = 0,
    weekend_factor: Optional[float] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Batched :func:`diurnal_profile` for a vector of per-VM peak hours.

    Returns an ``(n_vms, n_hours)`` matrix whose rows are bit-identical to
    per-VM calls of :func:`diurnal_profile` (and, when ``weekend_factor``
    is given, the elementwise product with :func:`weekly_profile`).  The
    profile is 24h-periodic (168h with the weekly dip folded in), so the
    bump is evaluated once per distinct hour and gathered, instead of
    recomputing ``exp`` for every trace hour.  ``out`` receives the final
    gather directly (e.g. a columnar-store row block).
    """
    if amplitude < 0:
        raise ConfigurationError(f"amplitude must be >= 0, got {amplitude}")
    if width_hours <= 0:
        raise ConfigurationError(f"width_hours must be > 0, got {width_hours}")
    if n_hours <= 0 and weekend_factor is not None:
        raise ConfigurationError(f"n_hours must be > 0, got {n_hours}")
    pattern = diurnal_pattern_matrix(
        peak_hours,
        amplitude=amplitude,
        width_hours=width_hours,
        weekend_factor=weekend_factor,
    )
    return _tile_periodic(pattern, n_hours, start_hour, out)


def diurnal_pattern_matrix(
    peak_hours: np.ndarray,
    *,
    amplitude: float = 1.0,
    width_hours: float = 4.0,
    weekend_factor: Optional[float] = None,
) -> np.ndarray:
    """The periodic ``(n_vms, period)`` pattern behind the diurnal matrix.

    ``period`` is 24 hours, or 168 with the weekly dip folded in.
    Expanding it with :func:`_tile_periodic` (or gathering it modulo the
    period) reproduces :func:`diurnal_profile_matrix` bit for bit —
    consumers with a fused gather (the C kernel) start from this.
    """
    if amplitude < 0:
        raise ConfigurationError(f"amplitude must be >= 0, got {amplitude}")
    if width_hours <= 0:
        raise ConfigurationError(f"width_hours must be > 0, got {width_hours}")
    peaks = np.asarray(peak_hours, dtype=float)
    if peaks.ndim != 1:
        raise ConfigurationError("peak_hours must be a 1-D array")
    hod = np.arange(HOURS_PER_DAY, dtype=float)
    distance = np.abs(hod[None, :] - peaks[:, None])
    distance = np.minimum(distance, HOURS_PER_DAY - distance)
    pattern = 1.0 + amplitude * np.exp(-(distance**2) / (2.0 * width_hours**2))
    if weekend_factor is None:
        return pattern
    # Fold the weekly dip into the (168h) pattern before expansion: the
    # product runs over 168 columns instead of n_hours.
    week = weekly_profile(HOURS_PER_WEEK, weekend_factor=weekend_factor)
    hod_week = np.asarray(hour_of_day(HOURS_PER_WEEK))
    return np.take(pattern, hod_week, axis=1) * week[None, :]


def _tile_periodic(
    pattern: np.ndarray,
    n_hours: int,
    start_hour: int,
    out: Optional[np.ndarray],
) -> np.ndarray:
    """Expand a periodic ``(n_vms, period)`` pattern to ``n_hours`` columns.

    Pure sliced copies — bit-identical to an index gather, but sequential
    writes instead of a per-element fancy-index walk.
    """
    period = pattern.shape[1]
    if out is None:
        out = np.empty((pattern.shape[0], n_hours))
    position = 0
    offset = start_hour % period
    while position < n_hours:
        span = min(period - offset, n_hours - position)
        out[:, position:position + span] = pattern[:, offset:offset + span]
        position += span
        offset = 0
    return out


def ar1_filter_matrix(
    gaussians: np.ndarray, phi: float, sigma: float
) -> np.ndarray:
    """Batched :func:`ar1_noise` from pre-drawn standard normals.

    ``gaussians`` is ``(n_vms, n_hours)`` of N(0, 1) draws: column 0 seeds
    the stationary start ``x0 = sigma/sqrt(1-phi^2) * g0`` and the rest
    are the shocks ``eps = sigma * g``.  Rows are bit-identical to
    :func:`ar1_noise` because ``Generator.normal(0, s, n)`` scales
    standard normals by exactly ``s`` and the linear-filter recurrence
    performs the same multiply/add per step as the scalar loop.
    """
    if not -1.0 < phi < 1.0:
        raise ConfigurationError(f"phi must be in (-1, 1), got {phi}")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    if gaussians.ndim != 2:
        raise ConfigurationError("ar1_filter_matrix expects a 2-D array")
    if sigma == 0:
        return np.zeros_like(gaussians)
    n_hours = gaussians.shape[1]
    stationary_std = sigma / np.sqrt(1.0 - phi**2)
    out = np.empty_like(gaussians)
    x0 = stationary_std * gaussians[:, 0]
    out[:, 0] = x0
    if n_hours == 1:
        return out
    if _lfilter is not None:
        shocks, _ = _lfilter(
            [sigma], [1.0, -phi], gaussians[:, 1:], axis=1, zi=(phi * x0)[:, None]
        )
        out[:, 1:] = shocks
    else:  # pragma: no cover - exercised only without scipy
        previous = x0
        for t in range(1, n_hours):
            previous = phi * previous + sigma * gaussians[:, t]
            out[:, t] = previous
    return out


def pareto_spike_matrix(
    n_rows: int,
    n_hours: int,
    *,
    rows: np.ndarray,
    starts: np.ndarray,
    magnitudes: np.ndarray,
    durations: np.ndarray,
) -> np.ndarray:
    """Batched :func:`pareto_spikes` scatter from pre-drawn spike draws.

    Each spike ``i`` lives on trace row ``rows[i]`` and decays linearly
    from ``starts[i]`` over ``durations[i]`` hours; overlapping spikes
    combine by max, exactly like the scalar loop (max is order-free).
    """
    spikes = np.zeros((n_rows, n_hours))
    starts = np.asarray(starts)
    durations = np.asarray(durations)
    if starts.size == 0:
        return spikes
    for offset in range(int(durations.max())):
        active = durations > offset
        times = starts + offset
        active &= times < n_hours
        if not active.any():
            continue
        decay = 1.0 - offset / durations[active]
        np.maximum.at(
            spikes, (rows[active], times[active]), magnitudes[active] * decay
        )
    return spikes


def scheduled_job_matrix(
    n_hours: int,
    *,
    period_hours: int,
    duration_hours: int,
    starts: np.ndarray,
    levels: np.ndarray,
    jitters: np.ndarray,
) -> np.ndarray:
    """Batched :func:`scheduled_jobs` from pre-drawn starts/levels/jitter.

    ``starts``/``levels`` are per-VM; ``jitters`` is ``(n_vms, max_occ)``
    with row ``j`` holding the jitter draws for VM ``j``'s occurrences (0
    beyond its count).  Occurrence validity is decided *before* jitter is
    applied, matching the scalar while-loop.
    """
    if period_hours <= 0:
        raise ConfigurationError(f"period_hours must be > 0, got {period_hours}")
    if duration_hours <= 0:
        raise ConfigurationError(
            f"duration_hours must be > 0, got {duration_hours}"
        )
    starts = np.asarray(starts)
    levels = np.asarray(levels, dtype=float)
    jitters = np.asarray(jitters)
    n_rows = starts.size
    load = np.zeros((n_rows, n_hours))
    if n_rows == 0 or jitters.shape[1] == 0:
        return load
    occurrences = starts[:, None] + np.arange(jitters.shape[1]) * period_hours
    begins = occurrences + jitters
    times = begins[:, :, None] + np.arange(duration_hours)
    valid = (
        (occurrences < n_hours)[:, :, None] & (times >= 0) & (times < n_hours)
    )
    row_index = np.broadcast_to(
        np.arange(n_rows)[:, None, None], times.shape
    )
    level_cube = np.broadcast_to(levels[:, None, None], times.shape)
    load[row_index[valid], times[valid]] = level_cube[valid]
    return load


def ewma_smooth_matrix(values: np.ndarray, alpha: float) -> np.ndarray:
    """Batched :func:`ewma_smooth` over the rows of a 2-D array.

    Bit-identical to per-row :func:`ewma_smooth`: the linear filter does
    the same ``alpha*v[t] + (1-alpha)*s[t-1]`` multiply/add per step.
    """
    if not 0 < alpha <= 1:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ConfigurationError("ewma_smooth_matrix expects a 2-D array")
    if approx_eq(alpha, 1.0):
        return values.copy()
    out = np.empty_like(values)
    out[:, 0] = values[:, 0]
    if values.shape[1] == 1:
        return out
    if _lfilter is not None:
        smoothed, _ = _lfilter(
            [alpha],
            [1.0, -(1.0 - alpha)],
            values[:, 1:],
            axis=1,
            zi=((1.0 - alpha) * values[:, 0])[:, None],
        )
        out[:, 1:] = smoothed
    else:  # pragma: no cover - exercised only without scipy
        previous = values[:, 0].copy()
        for t in range(1, values.shape[1]):
            previous = alpha * values[:, t] + (1.0 - alpha) * previous
            out[:, t] = previous
    return out


def ewma_smooth(values: np.ndarray, alpha: float) -> np.ndarray:
    """Exponentially weighted moving average with smoothing factor alpha.

    ``alpha`` is the weight of the *new* observation: 1.0 returns the
    input unchanged, small values respond slowly.  Used to model memory's
    sluggish response to load (committed memory does not spike and drop
    with each request burst the way CPU does).
    """
    if not 0 < alpha <= 1:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ConfigurationError("ewma_smooth expects a 1-D array")
    if approx_eq(alpha, 1.0):
        return values.copy()
    smoothed = np.empty_like(values)
    smoothed[0] = values[0]
    for t in range(1, values.size):
        smoothed[t] = alpha * values[t] + (1.0 - alpha) * smoothed[t - 1]
    return smoothed
