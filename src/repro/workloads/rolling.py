"""Appendable columnar store for streaming monitoring samples.

:class:`RollingTraceStore` is the online twin of the immutable
:class:`~repro.workloads.store.TraceStore`: the same row-major
``(n_servers, n_points)`` layout, but grown one (or a few) columns at a
time as monitoring ticks stream in, with a bounded retention window so a
long-running controller never holds more than ``retention_points``
columns per metric.

Design points, each pinned by ``tests/workloads/test_rolling_store.py``:

* **Trailing-column invalidation.**  The derived absolute-CPU matrix
  (``cpu_rpe2 = cpu_util × source capacity``) is filled in-place for the
  appended columns only; previously derived columns are never
  recomputed, so an append is O(n_servers × new_columns) regardless of
  history length.
* **Zero-copy views.**  :meth:`rolling_view` / :meth:`view` hand out
  read-only :class:`TraceStore` snapshots whose matrices are NumPy views
  into the live buffers.  Appends write strictly *past* the snapshot's
  columns and compactions copy into a fresh buffer, so a snapshot's
  contents never change after it is taken.
* **Bounded memory.**  Buffers grow geometrically up to
  ``2 × retention_points`` columns; once full, the newest
  ``retention_points`` columns are compacted to the front and the
  buffer is reused.  Peak buffer width is therefore a constant
  multiple of the retention window, however many samples stream in.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TraceError
from repro.workloads.store import TraceStore
from repro.workloads.trace import ServerTrace

__all__ = ["RollingTraceStore"]

#: Buffers hold up to this multiple of the retention window before a
#: compaction copies the retained tail back to column zero.
_CAPACITY_FACTOR = 2


class RollingTraceStore:
    """Append-only rolling window of per-VM demand columns.

    Parameters
    ----------
    vm_ids:
        Row labels, fixed for the lifetime of the store.
    cpu_capacity_rpe2:
        Per-VM source-server CPU capacity used to derive absolute CPU
        demand from utilization fractions (same convention as
        :meth:`TraceStore.from_traces`).
    interval_hours:
        Sampling interval of appended columns.
    retention_points:
        Maximum number of trailing columns retained; older columns are
        discarded by compaction.  Rolling views must fit inside it.
    """

    def __init__(
        self,
        vm_ids: Sequence[str],
        cpu_capacity_rpe2: Sequence[float],
        *,
        interval_hours: float = 1.0,
        retention_points: int = 720,
    ) -> None:
        if not vm_ids:
            raise TraceError("RollingTraceStore needs at least one VM")
        if len(set(vm_ids)) != len(vm_ids):
            raise TraceError("duplicate vm_ids in RollingTraceStore")
        if len(cpu_capacity_rpe2) != len(vm_ids):
            raise TraceError(
                "cpu_capacity_rpe2 must have one entry per vm_id"
            )
        if interval_hours <= 0:
            raise TraceError(
                f"interval_hours must be > 0, got {interval_hours}"
            )
        if retention_points <= 0:
            raise TraceError(
                f"retention_points must be > 0, got {retention_points}"
            )
        capacity = np.asarray(cpu_capacity_rpe2, dtype=float)
        if np.any(capacity <= 0) or not np.all(np.isfinite(capacity)):
            raise TraceError("cpu_capacity_rpe2 must be finite and > 0")
        self.vm_ids: Tuple[str, ...] = tuple(vm_ids)
        self.interval_hours = float(interval_hours)
        self.retention_points = int(retention_points)
        self._capacity_col = capacity[:, None]
        n = len(self.vm_ids)
        width = min(self.retention_points, 64)
        self._cpu_util = np.empty((n, width), dtype=float)
        self._cpu_rpe2 = np.empty((n, width), dtype=float)
        self._memory_gb = np.empty((n, width), dtype=float)
        #: Buffer column one past the newest sample.
        self._length = 0
        #: Buffer column of the oldest *retained* sample; columns before
        #: it are dead prefix awaiting the next compaction.
        self._start = 0
        #: Total columns ever appended (monotonic stream position).
        self._appended = 0
        self._compactions = 0
        self._row_of = {vm_id: i for i, vm_id in enumerate(self.vm_ids)}

    # -- construction ---------------------------------------------------

    @classmethod
    def from_traces(
        cls,
        traces: Sequence[ServerTrace],
        *,
        retention_points: int = 720,
    ) -> "RollingTraceStore":
        """Seed a rolling store from batch traces (controller bootstrap).

        The traces' columns become the initial window; subsequent
        streaming appends continue where the batch data ends.
        """
        if not traces:
            raise TraceError("cannot seed a RollingTraceStore from zero traces")
        store = cls(
            [t.vm_id for t in traces],
            [t.source_spec.cpu_rpe2 for t in traces],
            interval_hours=traces[0].interval_hours,
            retention_points=retention_points,
        )
        n_points = len(traces[0])
        cpu_util = np.empty((len(traces), n_points), dtype=float)
        memory_gb = np.empty((len(traces), n_points), dtype=float)
        for row, trace in enumerate(traces):
            cpu_util[row, :] = trace.cpu_util.values
            memory_gb[row, :] = trace.memory_gb.values
        store.append_samples(cpu_util, memory_gb)
        return store

    # -- properties -----------------------------------------------------

    @property
    def n_servers(self) -> int:
        return len(self.vm_ids)

    @property
    def n_points(self) -> int:
        """Columns currently retained (≤ ``retention_points``)."""
        return self._length - self._start

    @property
    def total_points(self) -> int:
        """Columns ever appended, including ones compaction dropped."""
        return self._appended

    @property
    def n_compactions(self) -> int:
        """Times the retained tail was copied back to column zero."""
        return self._compactions

    @property
    def buffer_points(self) -> int:
        """Current buffer width — bounded by ``2 × retention_points``."""
        return int(self._cpu_util.shape[1])

    # -- ingest ---------------------------------------------------------

    def append_samples(
        self, cpu_util: np.ndarray, memory_gb: np.ndarray
    ) -> None:
        """Append one or more demand columns.

        ``cpu_util`` / ``memory_gb`` are ``(n_servers,)`` vectors or
        ``(n_servers, k)`` matrices of utilization fractions and GB.
        Only the appended columns are written: the derived absolute-CPU
        matrix for existing columns is left untouched.
        """
        cpu = np.asarray(cpu_util, dtype=float)
        mem = np.asarray(memory_gb, dtype=float)
        if cpu.ndim == 1:
            cpu = cpu[:, None]
        if mem.ndim == 1:
            mem = mem[:, None]
        n = self.n_servers
        if cpu.shape[0] != n or mem.shape[0] != n:
            raise TraceError(
                f"append_samples: expected {n} rows, got "
                f"{cpu.shape[0]}/{mem.shape[0]}"
            )
        if cpu.shape[1] != mem.shape[1]:
            raise TraceError("append_samples: column count mismatch")
        if not (np.all(np.isfinite(cpu)) and np.all(np.isfinite(mem))):
            raise TraceError("append_samples: NaN or Inf in samples")
        if np.any(cpu < 0) or np.any(mem < 0):
            raise TraceError("append_samples: negative demand sample")
        k = cpu.shape[1]
        if k == 0:
            return
        if k > self.retention_points:
            # Columns beyond the retention window would be compacted
            # away immediately; only the trailing window is written.
            dropped = k - self.retention_points
            cpu = cpu[:, dropped:]
            mem = mem[:, dropped:]
            self._appended += dropped
            k = self.retention_points
        self._ensure_room(k)
        start = self._length
        end = start + k
        self._cpu_util[:, start:end] = cpu
        self._memory_gb[:, start:end] = mem
        # Trailing-column derivation: the same multiply TraceStore does
        # for the whole matrix, restricted to the new columns.
        self._cpu_rpe2[:, start:end] = (
            self._cpu_util[:, start:end] * self._capacity_col
        )
        self._length = end
        self._appended += k
        # Advance the retention window past columns that aged out; the
        # dead prefix is physically dropped at the next compaction.
        if self._length - self._start > self.retention_points:
            self._start = self._length - self.retention_points

    def _ensure_room(self, k: int) -> None:
        """Grow or compact so ``k`` more columns fit."""
        max_width = _CAPACITY_FACTOR * self.retention_points
        if self._length + k <= self.buffer_points:
            return
        # ``keep ≤ retention_points`` (the append trim above) and
        # ``k ≤ retention_points`` (oversized appends are pre-trimmed),
        # so the retained tail plus the append always fits the cap.
        keep = self.n_points
        width = min(max(2 * self.buffer_points, keep + k), max_width)
        if self._length > keep:
            self._compactions += 1
        self._reallocate(width, keep=keep)

    def _reallocate(self, width: int, keep: int) -> None:
        """Copy the last ``keep`` columns into fresh ``width`` buffers.

        Always a fresh allocation — previously handed-out views keep
        aliasing the old buffers, which are never written again.
        """
        n = self.n_servers
        new_cpu = np.empty((n, width), dtype=float)
        new_rpe2 = np.empty((n, width), dtype=float)
        new_mem = np.empty((n, width), dtype=float)
        if keep:
            tail = slice(self._length - keep, self._length)
            new_cpu[:, :keep] = self._cpu_util[:, tail]
            new_rpe2[:, :keep] = self._cpu_rpe2[:, tail]
            new_mem[:, :keep] = self._memory_gb[:, tail]
        self._cpu_util = new_cpu
        self._cpu_rpe2 = new_rpe2
        self._memory_gb = new_mem
        self._length = keep
        self._start = 0

    # -- views ----------------------------------------------------------

    def view(self) -> TraceStore:
        """Read-only snapshot of every retained column (zero-copy)."""
        return self._snapshot(self._start, self._length)

    def rolling_view(self, window_hours: float) -> TraceStore:
        """Read-only snapshot of the trailing ``window_hours`` columns.

        The window must align to sample boundaries and fit inside the
        retained columns.
        """
        points = window_hours / self.interval_hours
        if points != int(points):
            raise TraceError(
                f"window {window_hours}h does not align to "
                f"{self.interval_hours}h samples"
            )
        k = int(points)
        if not 0 < k <= self.n_points:
            raise TraceError(
                f"rolling window of {k} points out of range; "
                f"{self.n_points} columns retained"
            )
        return self._snapshot(self._length - k, self._length)

    def _snapshot(self, start: int, end: int) -> TraceStore:
        if end <= start:
            raise TraceError("empty RollingTraceStore snapshot")
        cpu_util = self._cpu_util[:, start:end].view()
        cpu_rpe2 = self._cpu_rpe2[:, start:end].view()
        memory_gb = self._memory_gb[:, start:end].view()
        for matrix in (cpu_util, cpu_rpe2, memory_gb):
            matrix.flags.writeable = False
        return TraceStore(
            vm_ids=self.vm_ids,
            cpu_util=cpu_util,
            cpu_rpe2=cpu_rpe2,
            memory_gb=memory_gb,
            interval_hours=self.interval_hours,
        )

    # -- queries --------------------------------------------------------

    def last_cpu_rpe2(self) -> np.ndarray:
        """Most recent absolute-CPU column (read-only view)."""
        if not self.n_points:
            raise TraceError("RollingTraceStore is empty")
        column = self._cpu_rpe2[:, self._length - 1].view()
        column.flags.writeable = False
        return column

    def last_cpu_util(self) -> np.ndarray:
        """Most recent utilization column (read-only view)."""
        if not self.n_points:
            raise TraceError("RollingTraceStore is empty")
        column = self._cpu_util[:, self._length - 1].view()
        column.flags.writeable = False
        return column

    def last_memory_gb(self) -> np.ndarray:
        """Most recent memory column (read-only view)."""
        if not self.n_points:
            raise TraceError("RollingTraceStore is empty")
        column = self._memory_gb[:, self._length - 1].view()
        column.flags.writeable = False
        return column

    def peak_window(self, window_points: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-VM (cpu_rpe2, memory_gb) peaks over the trailing window."""
        if window_points <= 0:
            raise TraceError(
                f"window_points must be > 0, got {window_points}"
            )
        k = min(window_points, self.n_points)
        if k == 0:
            raise TraceError("RollingTraceStore is empty")
        tail = slice(self._length - k, self._length)
        return (
            self._cpu_rpe2[:, tail].max(axis=1),
            self._memory_gb[:, tail].max(axis=1),
        )

    def row_of(self, vm_id: str) -> int:
        try:
            return self._row_of[vm_id]
        except KeyError:
            raise TraceError(
                f"unknown vm_id {vm_id!r} in RollingTraceStore"
            ) from None
