"""Chunked, memory-mapped trace storage for scale-out fleets.

A 100k-server fleet over 30 days of hourly samples is three
``(100_000, 720)`` float64 matrices — about 1.7 GB that no single
planning shard ever needs all of.  This module stores those matrices as
``.npy`` files on disk and serves them through ``np.memmap``, so a
:class:`~repro.workloads.store.TraceStore` opened from a chunk directory
keeps demand data *on disk* until a consumer touches it.  Contiguous row
slices (:meth:`TraceStore.rows`) and column windows (:meth:`TraceStore
.window`) stay zero-copy memmap views, which is exactly the access
pattern of sharded planning: each worker faults in only its shard's rows.

Layout of a store directory::

    <dir>/manifest.json   identity + per-VM metadata (JSON)
    <dir>/cpu_util.npy    (n_servers, n_points) float64
    <dir>/cpu_rpe2.npy    (n_servers, n_points) float64
    <dir>/memory_gb.npy   (n_servers, n_points) float64

The absolute-CPU matrix is derived block-by-block at *write* time with
the same broadcast multiply as :meth:`TraceStore.from_traces`, so an
opened store is bit-identical to the in-memory store built from the same
traces.

:class:`ChunkedTraceWriter` streams row blocks into the files without
ever holding the full fleet in memory; :func:`write_trace_set` spills an
existing in-memory :class:`~repro.workloads.trace.TraceSet`;
:func:`open_chunked_store` / :func:`open_chunked_trace_set` map a
directory back into planner-consumable objects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import TraceError
from repro.infrastructure.server import ServerSpec
from repro.infrastructure.vm import VirtualMachine
from repro.workloads.store import TraceStore
from repro.workloads.trace import ResourceTrace, ServerTrace, TraceSet

__all__ = [
    "ChunkedManifest",
    "ChunkedTraceWriter",
    "generate_chunked_store",
    "vm_record",
    "write_trace_set",
    "open_chunked_store",
    "open_chunked_trace_set",
]

MANIFEST_NAME = "manifest.json"
_MATRIX_FILES = ("cpu_util", "cpu_rpe2", "memory_gb")
_FORMAT_VERSION = 1


def vm_record(
    vm: VirtualMachine, source_spec: ServerSpec
) -> dict:
    """JSON-able per-row metadata: everything the matrices don't carry."""
    return {
        "vm_id": vm.vm_id,
        "memory_config_gb": vm.memory_config_gb,
        "workload_class": vm.workload_class,
        "labels": dict(vm.labels),
        "source_spec": {
            "cpu_rpe2": source_spec.cpu_rpe2,
            "memory_gb": source_spec.memory_gb,
            "network_mbps": source_spec.network_mbps,
            "disk_mbps": source_spec.disk_mbps,
            "model_name": source_spec.model_name,
        },
    }


def _vm_record(trace: ServerTrace) -> dict:
    return vm_record(trace.vm, trace.source_spec)


@dataclass(frozen=True)
class ChunkedManifest:
    """Identity and per-VM metadata of one chunked store directory.

    The matrices carry only demand numbers; everything needed to rebuild
    :class:`~repro.workloads.trace.ServerTrace` objects for a row range —
    VM identity, configured memory, workload class and labels, and the
    source server's full hardware spec — lives here as one JSON record
    per row.
    """

    name: str
    interval_hours: float
    vms: Tuple[dict, ...]

    def __post_init__(self) -> None:
        if self.interval_hours <= 0:
            raise TraceError(
                f"interval_hours must be > 0, got {self.interval_hours}"
            )

    @property
    def n_servers(self) -> int:
        return len(self.vms)

    @property
    def vm_ids(self) -> Tuple[str, ...]:
        return tuple(record["vm_id"] for record in self.vms)

    def virtual_machine(self, row: int) -> VirtualMachine:
        record = self.vms[row]
        return VirtualMachine(
            vm_id=record["vm_id"],
            memory_config_gb=record["memory_config_gb"],
            workload_class=record["workload_class"],
            labels=dict(record.get("labels", {})),
        )

    def source_spec(self, row: int) -> ServerSpec:
        spec = self.vms[row]["source_spec"]
        return ServerSpec(
            cpu_rpe2=spec["cpu_rpe2"],
            memory_gb=spec["memory_gb"],
            network_mbps=spec.get("network_mbps", 10_000.0),
            disk_mbps=spec.get("disk_mbps", 4_000.0),
            model_name=spec.get("model_name", "custom"),
        )


class ChunkedTraceWriter:
    """Stream row blocks of one fleet into a chunked store directory.

    The writer preallocates the on-disk matrices (sparse files on
    filesystems that support them) and fills them block by block, so
    peak memory is one block — not one fleet.  Rows must arrive in
    order; :meth:`close` refuses to finalize a partially written store.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        name: str,
        n_servers: int,
        n_points: int,
        interval_hours: float = 1.0,
    ) -> None:
        if n_servers <= 0 or n_points <= 0:
            raise TraceError(
                f"chunked store needs positive dimensions, got "
                f"({n_servers}, {n_points})"
            )
        if interval_hours <= 0:
            raise TraceError(
                f"interval_hours must be > 0, got {interval_hours}"
            )
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._name = name
        self._n_servers = n_servers
        self._n_points = n_points
        self._interval_hours = interval_hours
        self._cursor = 0
        self._closed = False
        self._vms: list = []
        self._matrices = {
            metric: np.lib.format.open_memmap(
                self._directory / f"{metric}.npy",
                mode="w+",
                dtype=np.float64,
                shape=(n_servers, n_points),
            )
            for metric in _MATRIX_FILES
        }

    @property
    def rows_written(self) -> int:
        return self._cursor

    def append_block(
        self,
        vm_records: Sequence[dict],
        cpu_util: np.ndarray,
        memory_gb: np.ndarray,
    ) -> None:
        """Write one block of rows at the current cursor.

        ``cpu_util``/``memory_gb`` are ``(k, n_points)`` blocks and
        ``vm_records`` the matching per-row metadata (see
        :func:`vm_record`).  The absolute-CPU block is derived here with
        the same broadcast multiply as ``TraceStore.from_traces`` so the
        on-disk matrix is bit-identical to the in-memory build.
        """
        if self._closed:
            raise TraceError("chunked writer is closed")
        block = np.asarray(cpu_util, dtype=float)
        memory = np.asarray(memory_gb, dtype=float)
        k = len(vm_records)
        if block.shape != (k, self._n_points) or memory.shape != block.shape:
            raise TraceError(
                f"block shape mismatch: {k} records, cpu {block.shape}, "
                f"memory {memory.shape}, expected ({k}, {self._n_points})"
            )
        stop = self._cursor + k
        if stop > self._n_servers:
            raise TraceError(
                f"block of {k} rows overflows store of {self._n_servers} "
                f"(cursor at {self._cursor})"
            )
        capacity = np.array(
            [record["source_spec"]["cpu_rpe2"] for record in vm_records],
            dtype=float,
        )[:, None]
        self._matrices["cpu_util"][self._cursor:stop] = block
        self._matrices["memory_gb"][self._cursor:stop] = memory
        np.multiply(
            block, capacity, out=self._matrices["cpu_rpe2"][self._cursor:stop]
        )
        self._vms.extend(vm_records)
        self._cursor = stop

    def append_traces(self, traces: Sequence[ServerTrace]) -> None:
        """Append a block of in-memory traces (convenience wrapper)."""
        if not traces:
            return
        self.append_block(
            [_vm_record(t) for t in traces],
            np.stack([t.cpu_util.values for t in traces]),
            np.stack([t.memory_gb.values for t in traces]),
        )

    def close(self) -> Path:
        """Flush matrices, write the manifest, return the directory."""
        if self._closed:
            return self._directory
        if self._cursor != self._n_servers:
            raise TraceError(
                f"chunked store incomplete: {self._cursor} of "
                f"{self._n_servers} rows written"
            )
        for matrix in self._matrices.values():
            matrix.flush()
        # Drop the writable maps before publishing the manifest: readers
        # treat a manifest's presence as "store is complete".
        self._matrices = {}
        manifest = {
            "format": _FORMAT_VERSION,
            "name": self._name,
            "interval_hours": self._interval_hours,
            "n_servers": self._n_servers,
            "n_points": self._n_points,
            "vms": self._vms,
        }
        path = self._directory / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest))
        tmp.replace(path)
        self._closed = True
        return self._directory


def write_trace_set(
    trace_set: TraceSet,
    directory: Union[str, Path],
    *,
    block_rows: int = 1024,
) -> Path:
    """Spill an in-memory trace set into a chunked store directory."""
    traces = trace_set.traces
    n_rows = len(traces)
    writer = ChunkedTraceWriter(
        directory,
        name=trace_set.name,
        n_servers=n_rows,
        n_points=trace_set.n_points,
        interval_hours=trace_set.interval_hours,
    )
    for start in range(0, n_rows, block_rows):
        writer.append_traces(traces[start:start + block_rows])
    return writer.close()


def generate_chunked_store(
    directory: Union[str, Path],
    name: str,
    specs: Sequence[tuple],
    n_hours: int,
    seed: int,
    *,
    mean_util_spread_sigma: float = 0.7,
    mean_util_bounds: Tuple[float, float] = (0.002, 0.6),
    correlation=None,
    block_rows: int = 2048,
) -> Path:
    """Generate a fleet straight to disk, one row block at a time.

    This is the array engine's streaming face wired to the chunked
    writer: each :class:`~repro.workloads.generator.TraceBlock` is
    written (and its absolute-CPU rows derived) the moment it is
    generated, so peak memory is ``O(block_rows * n_hours)`` however
    large the fleet — a 100k-server month never exists in RAM.  The
    on-disk store is bit-identical to ``generate_trace_set(...).store``
    for the same arguments.
    """
    from repro.workloads.generator import generate_trace_blocks

    if block_rows <= 0:
        raise TraceError(f"block_rows must be > 0, got {block_rows}")
    total = sum(int(count) for *_group, count in specs)
    writer = ChunkedTraceWriter(
        directory,
        name=name,
        n_servers=total,
        n_points=n_hours,
        interval_hours=1.0,
    )
    blocks = generate_trace_blocks(
        name,
        specs,
        n_hours,
        seed,
        mean_util_spread_sigma=mean_util_spread_sigma,
        mean_util_bounds=mean_util_bounds,
        correlation=correlation,
        block_rows=block_rows,
    )
    for block in blocks:
        spec = block.source_spec
        writer.append_block(
            [vm_record(vm, spec) for vm in block.virtual_machines()],
            block.cpu_util,
            block.memory_gb,
        )
    return writer.close()


def load_manifest(directory: Union[str, Path]) -> ChunkedManifest:
    """Read and validate the manifest of a chunked store directory."""
    path = Path(directory) / MANIFEST_NAME
    if not path.is_file():
        raise TraceError(f"no chunked store manifest at {path}")
    raw = json.loads(path.read_text())
    if raw.get("format") != _FORMAT_VERSION:
        raise TraceError(
            f"unsupported chunked store format {raw.get('format')!r} "
            f"at {path}"
        )
    return ChunkedManifest(
        name=raw["name"],
        interval_hours=float(raw["interval_hours"]),
        vms=tuple(raw["vms"]),
    )


def open_chunked_store(
    directory: Union[str, Path],
    *,
    manifest: Optional[ChunkedManifest] = None,
) -> TraceStore:
    """Open a chunked directory as a memory-mapped :class:`TraceStore`.

    The returned store's matrices are read-only ``np.memmap`` views:
    nothing is resident until touched, and ``window()``/``rows()``
    slices of it remain memmap views.  Query results are bit-identical
    to the in-memory store built from the same traces.  Pass an
    already-loaded ``manifest`` to skip re-parsing it — at 100k rows
    the manifest is tens of MB of JSON, a real cost per shard task.
    """
    base = Path(directory)
    if manifest is None:
        manifest = load_manifest(base)
    matrices = {}
    for metric in _MATRIX_FILES:
        path = base / f"{metric}.npy"
        if not path.is_file():
            raise TraceError(f"chunked store missing matrix file {path}")
        matrices[metric] = np.load(path, mmap_mode="r")
    expected = (manifest.n_servers, None)
    for metric, matrix in matrices.items():
        if matrix.ndim != 2 or matrix.shape[0] != expected[0]:
            raise TraceError(
                f"chunked store {metric}: shape {matrix.shape} does not "
                f"match manifest ({manifest.n_servers} servers)"
            )
    return TraceStore(
        vm_ids=manifest.vm_ids,
        cpu_util=matrices["cpu_util"],
        cpu_rpe2=matrices["cpu_rpe2"],
        memory_gb=matrices["memory_gb"],
        interval_hours=manifest.interval_hours,
    )


def open_chunked_trace_set(
    directory: Union[str, Path],
    *,
    start: int = 0,
    stop: Optional[int] = None,
) -> TraceSet:
    """Materialize rows ``[start, stop)`` as a planner-consumable set.

    Each :class:`ServerTrace` wraps a *view* of the memmap row (the
    trace constructors adopt read-only arrays without copying), and the
    set's cached columnar store is the matching zero-copy row slice of
    the on-disk store — so a shard worker that opens its own row range
    touches only those rows' pages, never the whole fleet.
    """
    manifest = load_manifest(directory)
    store = open_chunked_store(directory, manifest=manifest)
    if stop is None:
        stop = store.n_servers
    shard_store = store.rows(start, stop)
    traces = []
    for offset in range(stop - start):
        row = start + offset
        traces.append(
            ServerTrace(
                vm=manifest.virtual_machine(row),
                source_spec=manifest.source_spec(row),
                cpu_util=ResourceTrace(
                    values=shard_store.cpu_util[offset],
                    interval_hours=manifest.interval_hours,
                    unit="fraction",
                ),
                memory_gb=ResourceTrace(
                    values=shard_store.memory_gb[offset],
                    interval_hours=manifest.interval_hours,
                    unit="GB",
                ),
            )
        )
    trace_set = TraceSet(name=manifest.name, _traces=traces)
    trace_set._store = shard_store
    return trace_set
