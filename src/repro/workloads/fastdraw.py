"""On-demand compiled C draw kernel for the array generation engine.

The batched engine spends most of its time inside numpy's Generator
methods: at fleet scale the per-call python dispatch around each draw
costs as much as the draws themselves.  numpy ships its C distribution
implementations as a static library (``libnpyrandom.a``) with a public
header (``numpy/random/distributions.h``) precisely so extensions can
call them directly.  This module compiles ``_fastdraw.c`` against that
library at first use, loads it with ctypes, and exposes the per-block
draw loop plus the AR(1)/EWMA recurrences as single C calls.

Because the kernel calls the *same* compiled distribution functions
that ``Generator`` dispatches to, against the same PCG64 state struct
(installed per VM exactly like :class:`~.fastseed.FastSeeder`), its
variate stream is bit-identical to the reference per-VM Generator
calls.  Nothing is trusted: :func:`make_fast_drawer` runs a fixed draw
choreography through the library and replays it on a reference
``Generator`` (covering the lognormal/normal/uniform/pareto/poisson
paths, the Lemire bounded-integer path, and the buffered-uint32 reset),
and verifies the C filters against the numpy/scipy implementations.
Any mismatch — or a missing compiler — disables the kernel for the
process and callers fall back to the pure-python draw loop.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import sysconfig
import tempfile
from typing import Optional, Tuple

import numpy as np

from .fastseed import FastSeeder

__all__ = ["FastDrawKernel", "make_fast_drawer"]

_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_fastdraw.c")


class DrawParams(ctypes.Structure):
    """Mirror of ``repro_draw_params`` in ``_fastdraw.c`` (same order)."""

    _fields_ = [
        ("count", ctypes.c_int64),
        ("n_hours", ctypes.c_int64),
        ("spread_mu", ctypes.c_double),
        ("spread_sigma", ctypes.c_double),
        ("peak_low", ctypes.c_double),
        ("peak_span", ctypes.c_double),
        ("ln_mu", ctypes.c_double),
        ("ln_sigma", ctypes.c_double),
        ("draw_gauss", ctypes.c_int64),
        ("mem_mu", ctypes.c_double),
        ("mem_sigma", ctypes.c_double),
        ("has_sched", ctypes.c_int64),
        ("sched_period", ctypes.c_int64),
        ("sched_jitter", ctypes.c_int64),
        ("sched_max_occ", ctypes.c_int64),
        ("sched_base_level", ctypes.c_double),
        ("level_low", ctypes.c_double),
        ("level_span", ctypes.c_double),
        ("do_spikes", ctypes.c_int64),
        ("spike_lam", ctypes.c_double),
        ("spike_alpha", ctypes.c_double),
        ("n_events", ctypes.c_int64),
        ("participation", ctypes.c_double),
        ("severity_low", ctypes.c_double),
        ("severity_span", ctypes.c_double),
    ]


class DrawBuffers(ctypes.Structure):
    """Mirror of ``repro_draw_buffers`` in ``_fastdraw.c`` (same order)."""

    _fields_ = [
        ("state_lo", ctypes.c_void_p),
        ("state_hi", ctypes.c_void_p),
        ("inc_lo", ctypes.c_void_p),
        ("inc_hi", ctypes.c_void_p),
        ("event_magnitudes", ctypes.c_void_p),
        ("spreads", ctypes.c_void_p),
        ("peaks", ctypes.c_void_p),
        ("ln_rows", ctypes.c_void_p),
        ("gauss", ctypes.c_void_p),
        ("mem_rows", ctypes.c_void_p),
        ("sched_starts", ctypes.c_void_p),
        ("sched_levels", ctypes.c_void_p),
        ("sched_jitters", ctypes.c_void_p),
        ("spike_counts", ctypes.c_void_p),
        ("spike_starts", ctypes.c_void_p),
        ("spike_paretos", ctypes.c_void_p),
        ("spike_durs", ctypes.c_void_p),
        ("spike_capacity", ctypes.c_int64),
        ("hit_events", ctypes.c_void_p),
        ("hit_rows", ctypes.c_void_p),
        ("hit_sevs", ctypes.c_void_p),
    ]


def _cache_dir() -> str:
    # Where the compiled .so lands; never what it computes.  Task
    # results are bit-identical with or without a populated cache.
    root = os.environ.get("XDG_CACHE_HOME") or os.path.join(  # repro-lint: disable=REPRO111
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(root, "repro-workloads")


def _npyrandom_library() -> Optional[str]:
    path = os.path.join(
        os.path.dirname(np.random.__file__), "lib", "libnpyrandom.a"
    )
    return path if os.path.exists(path) else None


# -O3 auto-vectorizes the elementwise passes.  That is safe here: every
# fused op keeps its per-element IEEE sequence (no reassociation of
# sums), and the only reduction is max, which is exactly order-free.
# -ffp-contract=off forbids fused multiply-adds, which would change
# results versus numpy's own elementwise arithmetic; -ffast-math stays
# off for the same reason.
_COMPILE_FLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off")


def _compile_library() -> Optional[str]:
    """Compile ``_fastdraw.c`` into a cached shared object, or ``None``.

    The cache key hashes the C source, the compile flags, and the numpy
    and python versions, so changing any rebuilds (and re-verifies) the
    kernel rather than reusing a stale binary against changed internals.
    """
    compiler = shutil.which("gcc") or shutil.which("cc")
    static_lib = _npyrandom_library()
    if compiler is None or static_lib is None:
        return None
    try:
        with open(_SOURCE_PATH, "rb") as handle:
            source = handle.read()
    except OSError:
        return None
    key = hashlib.sha256(
        source
        + b"|".join(flag.encode() for flag in _COMPILE_FLAGS)
        + np.__version__.encode()
        + sys.version.encode()
    ).hexdigest()[:16]
    directory = _cache_dir()
    target = os.path.join(directory, f"_fastdraw-{key}.so")
    if os.path.exists(target):
        return target
    try:
        os.makedirs(directory, exist_ok=True)
        handle, scratch = tempfile.mkstemp(suffix=".so", dir=directory)
        os.close(handle)
        command = [
            compiler,
            *_COMPILE_FLAGS,
            "-I" + np.get_include(),
            "-I" + sysconfig.get_paths()["include"],
            _SOURCE_PATH,
            static_lib,
            "-o",
            scratch,
            "-lm",
        ]
        result = subprocess.run(
            command,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=120,
        )
        if result.returncode != 0:
            os.unlink(scratch)
            return None
        os.replace(scratch, target)  # atomic against concurrent builds
        return target
    except (OSError, subprocess.SubprocessError):
        return None


def _load_library() -> Optional[ctypes.CDLL]:
    target = _compile_library()
    if target is None:
        return None
    try:
        library = ctypes.CDLL(target)
    except OSError:
        return None
    library.repro_draw_block.restype = ctypes.c_int64
    library.repro_draw_block.argtypes = [
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.POINTER(DrawParams),
        ctypes.POINTER(DrawBuffers),
        ctypes.POINTER(ctypes.c_int64),
        ctypes.POINTER(ctypes.c_int64),
    ]
    library.repro_draw_probe.restype = None
    library.repro_draw_probe.argtypes = [
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_void_p,
    ]
    for name in ("repro_ar1_filter", "repro_ewma_filter"):
        function = getattr(library, name)
        function.restype = None
        function.argtypes = [
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_double,
            ctypes.c_double,
        ] + ([ctypes.c_double] if name == "repro_ar1_filter" else [])
    library.repro_texture_mul.restype = None
    library.repro_texture_mul.argtypes = [
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_int64,
        ctypes.c_int64,
    ]
    library.repro_texture_fill.restype = None
    library.repro_texture_fill.argtypes = [
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_int64,
        ctypes.c_int64,
    ]
    library.repro_row_scale.restype = None
    library.repro_row_scale.argtypes = [
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_int64,
        ctypes.c_int64,
    ]
    library.repro_mem_finish.restype = None
    library.repro_mem_finish.argtypes = [
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_int64,
        ctypes.c_int64,
    ] + [ctypes.c_double] * 7
    library.repro_clip_scale_div.restype = None
    library.repro_clip_scale_div.argtypes = [
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_void_p,
        ctypes.c_int64,
        ctypes.c_int64,
    ] + [ctypes.c_double] * 4
    return library


def _capsule_pointer(bit_generator: np.random.BitGenerator) -> Optional[int]:
    get_pointer = ctypes.pythonapi.PyCapsule_GetPointer
    get_pointer.restype = ctypes.c_void_p
    get_pointer.argtypes = [ctypes.py_object, ctypes.c_char_p]
    try:
        pointer = get_pointer(bit_generator.capsule, b"BitGenerator")
    except Exception:  # pragma: no cover - depends on numpy internals
        return None
    return int(pointer) if pointer else None


class FastDrawKernel:
    """ctypes facade over the compiled draw kernel, bound to one seeder.

    The kernel draws through the seeder's reused bit generator: each
    ``draw_block`` call installs the caller-provided per-VM state words
    in C and pulls every variate without returning to python.
    """

    def __init__(self, library: ctypes.CDLL, seeder: FastSeeder) -> None:
        pointer = _capsule_pointer(seeder.bit_generator)
        if pointer is None:
            raise RuntimeError("BitGenerator capsule unavailable")
        self._library = library
        self.seeder = seeder
        self._bitgen = pointer
        words_address, flags_address = seeder.raw_addresses()
        self._words = words_address
        self._flags = flags_address

    def draw_block(
        self, params: DrawParams, buffers: DrawBuffers
    ) -> Tuple[int, int, int]:
        """Run the C draw loop; ``(overflowed, spikes_needed, hits)``."""
        spikes_needed = ctypes.c_int64(0)
        hits = ctypes.c_int64(0)
        overflowed = self._library.repro_draw_block(
            self._bitgen,
            self._words,
            self._flags,
            ctypes.byref(params),
            ctypes.byref(buffers),
            ctypes.byref(spikes_needed),
            ctypes.byref(hits),
        )
        return int(overflowed), int(spikes_needed.value), int(hits.value)

    def probe(self) -> Tuple[np.ndarray, np.ndarray]:
        """Run the fixed verification choreography on the current state."""
        floats = np.empty(6)
        integers = np.empty(5, dtype=np.int64)
        self._library.repro_draw_probe(
            self._bitgen,
            floats.ctypes.data,
            integers.ctypes.data,
        )
        return floats, integers

    def ar1_filter(
        self, gaussians: np.ndarray, phi: float, sigma: float
    ) -> np.ndarray:
        """C twin of :func:`~.models.ar1_filter_matrix` (bit-identical)."""
        gaussians = np.ascontiguousarray(gaussians, dtype=np.float64)
        count, n_hours = gaussians.shape
        out = np.empty_like(gaussians)
        stationary_std = sigma / np.sqrt(1.0 - phi**2)
        self._library.repro_ar1_filter(
            gaussians.ctypes.data,
            out.ctypes.data,
            count,
            n_hours,
            phi,
            sigma,
            stationary_std,
        )
        return out

    def ewma_filter(self, values: np.ndarray, alpha: float) -> np.ndarray:
        """C twin of :func:`~.models.ewma_smooth_matrix` (bit-identical)."""
        values = np.ascontiguousarray(values, dtype=np.float64)
        count, n_hours = values.shape
        out = np.empty_like(values)
        self._library.repro_ewma_filter(
            values.ctypes.data,
            out.ctypes.data,
            count,
            n_hours,
            alpha,
            1.0 - alpha,
        )
        return out

    def texture_mul(
        self,
        util: np.ndarray,
        texture_a: Optional[np.ndarray],
        texture_b: Optional[np.ndarray],
        column: Optional[np.ndarray],
    ) -> None:
        """One-pass ``util *= a; util *= b; util *= column`` (in place).

        Bit-identical to the separate broadcast passes; operands may be
        ``None``.  ``util`` must be C-contiguous float64.
        """
        count, n_hours = util.shape

        def _address(array: Optional[np.ndarray]) -> int:
            return 0 if array is None else array.ctypes.data

        self._library.repro_texture_mul(
            util.ctypes.data,
            _address(texture_a),
            _address(texture_b),
            _address(column),
            count,
            n_hours,
        )

    def texture_fill(
        self,
        util: np.ndarray,
        pattern: np.ndarray,
        start_hour: int,
        texture_a: Optional[np.ndarray],
        texture_b: Optional[np.ndarray],
        column: Optional[np.ndarray],
    ) -> None:
        """One pass: gather the periodic ``pattern`` row and multiply.

        Bit-identical to tiling ``pattern`` out to ``util`` and then
        applying :meth:`texture_mul`, without the expanded matrix.
        """
        count, n_hours = util.shape
        pattern = np.ascontiguousarray(pattern, dtype=np.float64)

        def _address(array: Optional[np.ndarray]) -> int:
            return 0 if array is None else array.ctypes.data

        self._library.repro_texture_fill(
            util.ctypes.data,
            pattern.ctypes.data,
            pattern.shape[1],
            start_hour,
            _address(texture_a),
            _address(texture_b),
            _address(column),
            count,
            n_hours,
        )

    def row_scale(
        self,
        util: np.ndarray,
        numerator: np.ndarray,
        denominator: np.ndarray,
    ) -> None:
        """One-pass ``util *= numerator[:, None]; util /= denominator[:, None]``."""
        count, n_hours = util.shape
        self._library.repro_row_scale(
            util.ctypes.data,
            numerator.ctypes.data,
            denominator.ctypes.data,
            count,
            n_hours,
        )

    def mem_finish(
        self,
        committed: np.ndarray,
        noise: Optional[np.ndarray],
        *,
        alpha: float,
        dynamic_frac: float,
        base_frac: float,
        configured_gb: float,
        clip_low: float,
        clip_high: float,
    ) -> None:
        """Fused memory tail (EWMA, affine, noise, scale, clip) in place.

        Bit-identical to the reference pass sequence in
        ``generator._block_math``; ``committed`` holds the pow() result
        on entry and the final committed-GB matrix on return.
        """
        count, n_hours = committed.shape
        self._library.repro_mem_finish(
            committed.ctypes.data,
            0 if noise is None else noise.ctypes.data,
            count,
            n_hours,
            alpha,
            1.0 - alpha,
            dynamic_frac,
            base_frac,
            configured_gb,
            clip_low,
            clip_high,
        )

    def clip_scale_div(
        self,
        util: np.ndarray,
        rpe2: Optional[np.ndarray],
        committed: np.ndarray,
        *,
        clip_low: float,
        clip_high: float,
        scale: float,
        peak_floor: float,
    ) -> None:
        """Fused CPU/memory boundary: clip ``util`` in place, optionally
        write ``rpe2 = util * scale``, and set ``committed`` to each row
        divided by its (floored) row maximum.

        Bit-identical to ``np.clip`` + broadcast multiply + ``max(axis=1)``
        + ``np.maximum(..., floor)`` + row-wise divide.
        """
        count, n_hours = util.shape
        self._library.repro_clip_scale_div(
            util.ctypes.data,
            0 if rpe2 is None else rpe2.ctypes.data,
            committed.ctypes.data,
            count,
            n_hours,
            clip_low,
            clip_high,
            scale,
            peak_floor,
        )


def _verify(kernel: FastDrawKernel) -> bool:
    """Prove the library's draws and filters against numpy references."""
    seeder = kernel.seeder
    for seed, index in ((0, 1), (11, 5), (123456789123456789, 40001)):
        lists = seeder.seeded_state_lists(seed, index, index + 1)
        if lists is None:
            return False
        seeder.install(lists[0][0], lists[1][0], lists[2][0], lists[3][0])
        floats, integers = kernel.probe()
        reference = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence(seed, spawn_key=(index,)))
        )
        expected_floats = np.empty(6)
        expected_floats[0] = reference.lognormal(0.1, 0.9)
        expected_floats[1:4] = reference.standard_normal(3)
        expected_floats[4] = reference.random()
        expected_floats[5] = reference.pareto(2.5)
        expected_integers = np.empty(5, dtype=np.int64)
        expected_integers[0] = reference.integers(0, 24)
        expected_integers[1] = reference.poisson(5.04)
        expected_integers[2] = reference.integers(-3, 4)
        expected_integers[3:5] = reference.integers(1, 4, size=2)
        if not np.array_equal(floats, expected_floats):
            return False
        if not np.array_equal(integers, expected_integers):
            return False
        if seeder.bit_generator.state != reference.bit_generator.state:
            return False

    from . import models

    probe_rng = np.random.default_rng(2024)
    matrix = probe_rng.standard_normal((5, 17))
    for phi, sigma in ((0.6, 0.2), (-0.35, 1.1), (0.85, 0.12)):
        if not np.array_equal(
            kernel.ar1_filter(matrix, phi, sigma),
            models.ar1_filter_matrix(matrix, phi, sigma),
        ):
            return False
    values = np.abs(matrix) + 0.1
    for alpha in (0.3, 0.85):
        if not np.array_equal(
            kernel.ewma_filter(values, alpha),
            models.ewma_smooth_matrix(values, alpha),
        ):
            return False

    texture_a = probe_rng.lognormal(0.0, 0.4, matrix.shape)
    texture_b = probe_rng.lognormal(0.0, 0.2, matrix.shape)
    column = probe_rng.lognormal(0.0, 0.3, matrix.shape[1])
    for use_a, use_b, use_column in (
        (True, True, True),
        (True, False, False),
        (False, True, True),
        (False, False, True),
    ):
        reference = np.abs(matrix) + 0.05
        candidate = reference.copy()
        if use_a:
            reference *= texture_a
        if use_b:
            reference *= texture_b
        if use_column:
            reference *= column
        kernel.texture_mul(
            candidate,
            texture_a if use_a else None,
            texture_b if use_b else None,
            column if use_column else None,
        )
        if not np.array_equal(reference, candidate):
            return False

    pattern = probe_rng.lognormal(0.0, 0.3, (matrix.shape[0], 7))
    for start_hour in (0, 3):
        tiled = np.concatenate(
            [np.roll(pattern, -start_hour, axis=1)]
            * (matrix.shape[1] // 7 + 1),
            axis=1,
        )[:, : matrix.shape[1]]
        reference = tiled * texture_a
        reference *= column
        candidate = np.empty_like(reference)
        kernel.texture_fill(
            candidate, pattern, start_hour, texture_a, None, column
        )
        if not np.array_equal(reference, candidate):
            return False

    numerator = probe_rng.uniform(0.01, 0.5, matrix.shape[0])
    denominator = probe_rng.uniform(0.2, 2.0, matrix.shape[0])
    reference = np.abs(matrix) + 0.05
    candidate = reference.copy()
    reference *= numerator[:, None]
    reference /= denominator[:, None]
    kernel.row_scale(candidate, numerator, denominator)
    if not np.array_equal(reference, candidate):
        return False

    noise = probe_rng.lognormal(0.0, 0.05, matrix.shape)
    for use_noise in (False, True):
        for alpha, dynamic_frac, base_frac, gb in (
            (0.3, 0.2, 0.3, 64.0),
            (0.85, 0.35, 0.25, 192.0),
        ):
            start = np.abs(matrix) / (np.abs(matrix).max() + 1.0) + 0.01
            reference = models.ewma_smooth_matrix(start, alpha)
            reference = reference * dynamic_frac
            reference += base_frac
            if use_noise:
                reference *= noise
            reference *= gb
            np.clip(reference, 0.01 * gb, gb, out=reference)
            candidate = start.copy()
            kernel.mem_finish(
                candidate,
                noise if use_noise else None,
                alpha=alpha,
                dynamic_frac=dynamic_frac,
                base_frac=base_frac,
                configured_gb=gb,
                clip_low=0.01 * gb,
                clip_high=gb,
            )
            if not np.array_equal(reference, candidate):
                return False
    for with_rpe2, floor in ((False, 1e-9), (True, 1e-9), (True, 10.0)):
        util = np.abs(matrix) + 0.001
        expected_util = np.clip(util, 0.02, 1.0)
        expected_rpe2 = expected_util * 37.5
        peaks = np.maximum(expected_util.max(axis=1), floor)
        expected_committed = expected_util / peaks[:, None]
        candidate_util = util.copy()
        candidate_rpe2 = np.empty_like(util) if with_rpe2 else None
        candidate_committed = np.empty_like(util)
        kernel.clip_scale_div(
            candidate_util,
            candidate_rpe2,
            candidate_committed,
            clip_low=0.02,
            clip_high=1.0,
            scale=37.5,
            peak_floor=floor,
        )
        if not np.array_equal(expected_util, candidate_util):
            return False
        if not np.array_equal(expected_committed, candidate_committed):
            return False
        if with_rpe2 and not np.array_equal(expected_rpe2, candidate_rpe2):
            return False
    return True


_SUPPORTED: Optional[bool] = None
_LIBRARY: Optional[ctypes.CDLL] = None


def make_fast_drawer(seeder: Optional[FastSeeder]) -> Optional[FastDrawKernel]:
    """A verified :class:`FastDrawKernel` for ``seeder``, or ``None``.

    The compile + verify cost is paid once per process; subsequent
    calls only rebind the cached library to the caller's seeder.  The
    memo below is a pure capability probe — a verified kernel and the
    python fallback produce bit-identical results, so cached task
    outputs do not depend on which path a process took.
    """
    global _SUPPORTED, _LIBRARY
    if seeder is None or _SUPPORTED is False:
        return None
    try:
        if _LIBRARY is None:
            _LIBRARY = _load_library()  # repro-lint: disable=REPRO111
        if _LIBRARY is None:
            _SUPPORTED = False  # repro-lint: disable=REPRO111
            return None
        kernel = FastDrawKernel(_LIBRARY, seeder)
        if _SUPPORTED is None:
            _SUPPORTED = _verify(kernel)  # repro-lint: disable=REPRO111
    except Exception:  # pragma: no cover - depends on toolchain/numpy
        _SUPPORTED = False  # repro-lint: disable=REPRO111
        return None
    return kernel if _SUPPORTED else None
