"""Synthetic server trace generation.

The paper's traces are proprietary (30-day hourly monitoring of >3000
production Windows servers).  This module generates statistically
equivalent traces: each server draws a *workload class profile* (web,
steady batch, scheduled batch, idle) that controls its CPU burstiness
model and its memory-follows-load model.  The four datacenter presets in
:mod:`repro.workloads.datacenters` are mixtures of these classes tuned to
reproduce the paper's Section-4 measurements.

CPU generation pipeline (per server):

1. deterministic shape: diurnal bump × weekend dip,
2. multiplicative stochastic texture: i.i.d. lognormal × exp(AR(1)),
3. rescale to the server's target mean utilization,
4. additive scheduled-batch windows and Pareto spikes,
5. clip to [floor, 1.0] (a source server cannot exceed its own capacity).

Memory generation: committed memory = configured × (base + dynamic ×
smoothed(load^exponent)) with small multiplicative noise — the sub-linear
exponent and smoothing are what make memory an order of magnitude less
bursty than CPU (Observation 2; validated against the paper's Olio
anecdote by :mod:`repro.workloads.appmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.infrastructure.server import ServerSpec
from repro.infrastructure.vm import VirtualMachine, WorkloadClass
from repro.metrics.catalog import ServerModel
from repro.workloads import models
from repro.workloads.trace import ResourceTrace, ServerTrace, TraceSet

__all__ = [
    "ScheduledJobSpec",
    "CpuModel",
    "MemoryModel",
    "CorrelationModel",
    "WorkloadClassProfile",
    "generate_server_trace",
    "generate_trace_set",
    "WEB_BURSTY",
    "WEB_MODERATE",
    "STEADY_BATCH",
    "SCHEDULED_BATCH",
    "IDLE",
]

_UTIL_FLOOR = 0.002


@dataclass(frozen=True)
class CorrelationModel:
    """Cross-server demand correlation within a datacenter.

    Two mechanisms make enterprise workloads peak *together* (and thereby
    limit the statistical-multiplexing gains stochastic consolidation can
    bank on — the stability of correlation is Observation 5's stated
    reason why PCP works, and correlated bursts are what put dynamic
    consolidation at contention risk):

    * a shared mean-one AR(1) *business factor* multiplying every
      server's load (market open, month-end, campaign traffic), and
    * *flash events*: Poisson-arriving episodes during which a random
      subset of servers simultaneously multiply their demand.

    Each workload class scales its exposure via
    ``WorkloadClassProfile.correlation_sensitivity`` — front-end web
    servers ride every market event; back-office batch barely notices.
    """

    ar1_phi: float = 0.85
    ar1_sigma: float = 0.15
    event_rate_per_day: float = 0.5
    event_participation: float = 0.35
    event_magnitude_scale: float = 1.5
    event_alpha: float = 1.8
    event_max_multiplier: float = 8.0
    event_max_duration_hours: int = 3

    def __post_init__(self) -> None:
        if not -1.0 < self.ar1_phi < 1.0:
            raise ConfigurationError("ar1_phi must be in (-1, 1)")
        if self.ar1_sigma < 0:
            raise ConfigurationError("ar1_sigma must be >= 0")
        if self.event_rate_per_day < 0:
            raise ConfigurationError("event_rate_per_day must be >= 0")
        if not 0 <= self.event_participation <= 1:
            raise ConfigurationError(
                "event_participation must be in [0, 1]"
            )
        if self.event_magnitude_scale < 0:
            raise ConfigurationError("event_magnitude_scale must be >= 0")
        if self.event_alpha <= 0:
            raise ConfigurationError("event_alpha must be > 0")
        if self.event_max_multiplier < 1:
            raise ConfigurationError("event_max_multiplier must be >= 1")
        if self.event_max_duration_hours < 1:
            raise ConfigurationError(
                "event_max_duration_hours must be >= 1"
            )

    def draw_shared_log_factor(
        self, n_hours: int, rng: np.random.Generator
    ) -> np.ndarray:
        """The shared AR(1) log-factor all servers are exposed to."""
        return models.ar1_noise(n_hours, self.ar1_phi, self.ar1_sigma, rng)

    def draw_events(
        self, n_hours: int, rng: np.random.Generator
    ) -> "list[tuple[int, int, float]]":
        """Flash events as ``(start_hour, duration, extra_multiplier)``."""
        n_events = rng.poisson(self.event_rate_per_day * n_hours / 24.0)
        events = []
        for _ in range(n_events):
            start = int(rng.integers(0, n_hours))
            duration = int(
                rng.integers(1, self.event_max_duration_hours + 1)
            )
            magnitude = min(
                self.event_magnitude_scale * rng.pareto(self.event_alpha),
                self.event_max_multiplier - 1.0,
            )
            events.append((start, duration, magnitude))
        return events


@dataclass(frozen=True)
class ScheduledJobSpec:
    """Periodic batch job parameters (see :func:`models.scheduled_jobs`)."""

    period_hours: int = 24
    start_hour: int = 2
    duration_hours: int = 2
    level: float = 0.4
    jitter_hours: int = 1


@dataclass(frozen=True)
class CpuModel:
    """CPU burstiness model for one workload class."""

    diurnal_amplitude: float = 1.0
    diurnal_width_hours: float = 4.0
    weekend_factor: float = 0.6
    lognormal_sigma: float = 0.5
    ar1_phi: float = 0.7
    ar1_sigma: float = 0.2
    spike_rate_per_hour: float = 0.0
    spike_alpha: float = 1.6
    spike_scale: float = 0.15
    spike_max: float = 0.9
    scheduled: Optional[ScheduledJobSpec] = None

    def __post_init__(self) -> None:
        if self.lognormal_sigma < 0 or self.ar1_sigma < 0:
            raise ConfigurationError("noise sigmas must be >= 0")
        if self.spike_rate_per_hour < 0:
            raise ConfigurationError("spike_rate_per_hour must be >= 0")


@dataclass(frozen=True)
class MemoryModel:
    """Committed-memory model for one workload class.

    ``committed = configured × (base_frac + dynamic_frac × f(load))`` with
    ``f(load) = ewma(load_normalized ** load_exponent)``.
    """

    base_frac: float = 0.30
    dynamic_frac: float = 0.20
    load_exponent: float = 0.6
    smoothing_alpha: float = 0.3
    noise_sigma: float = 0.03

    def __post_init__(self) -> None:
        if not 0 <= self.base_frac <= 1:
            raise ConfigurationError(
                f"base_frac must be in [0, 1], got {self.base_frac}"
            )
        if self.dynamic_frac < 0 or self.base_frac + self.dynamic_frac > 1.0:
            raise ConfigurationError(
                "need 0 <= base_frac + dynamic_frac <= 1, got "
                f"{self.base_frac} + {self.dynamic_frac}"
            )
        if self.load_exponent <= 0:
            raise ConfigurationError(
                f"load_exponent must be > 0, got {self.load_exponent}"
            )
        if not 0 < self.smoothing_alpha <= 1:
            raise ConfigurationError(
                f"smoothing_alpha must be in (0, 1], got {self.smoothing_alpha}"
            )


@dataclass(frozen=True)
class WorkloadClassProfile:
    """A named workload class: CPU + memory models and metadata."""

    name: str
    workload_class: str
    mean_util: float
    cpu: CpuModel = field(default_factory=CpuModel)
    memory: MemoryModel = field(default_factory=MemoryModel)
    #: Exposure to the datacenter's :class:`CorrelationModel` (0 = immune,
    #: 1 = full exposure).  Front-end web is high; batch is low.
    correlation_sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.mean_util <= 1:
            raise ConfigurationError(
                f"{self.name}: mean_util must be in (0, 1], got {self.mean_util}"
            )
        if not 0 <= self.correlation_sensitivity <= 1:
            raise ConfigurationError(
                f"{self.name}: correlation_sensitivity must be in [0, 1]"
            )
        WorkloadClass.top_level(self.workload_class)

    def with_mean_util(self, mean_util: float) -> "WorkloadClassProfile":
        """Copy of this profile at a different target mean utilization."""
        return replace(self, mean_util=mean_util)


#: Heavy-tailed interactive web workload (Banking-style): CoV >= 1,
#: peak-to-average often above 5-10 at short consolidation intervals.
WEB_BURSTY = WorkloadClassProfile(
    name="web-bursty",
    workload_class=WorkloadClass.WEB_INTERACTIVE,
    mean_util=0.05,
    cpu=CpuModel(
        diurnal_amplitude=1.8,
        weekend_factor=0.5,
        lognormal_sigma=0.55,
        ar1_phi=0.6,
        ar1_sigma=0.20,
        spike_rate_per_hour=0.007,
        spike_alpha=1.5,
        spike_scale=0.10,
        spike_max=0.85,
    ),
    memory=MemoryModel(
        base_frac=0.22,
        dynamic_frac=0.28,
        load_exponent=0.6,
        smoothing_alpha=0.25,
        noise_sigma=0.04,
    ),
)

#: Moderately bursty web workload (Airlines/Beverage-style front ends).
WEB_MODERATE = WorkloadClassProfile(
    name="web-moderate",
    workload_class=WorkloadClass.WEB_INTERACTIVE,
    mean_util=0.04,
    correlation_sensitivity=0.7,
    cpu=CpuModel(
        diurnal_amplitude=1.0,
        weekend_factor=0.6,
        lognormal_sigma=0.50,
        ar1_phi=0.7,
        ar1_sigma=0.20,
        spike_rate_per_hour=0.005,
        spike_alpha=1.8,
        spike_scale=0.08,
        spike_max=0.6,
    ),
    memory=MemoryModel(
        base_frac=0.35,
        dynamic_frac=0.15,
        load_exponent=0.6,
        smoothing_alpha=0.2,
        noise_sigma=0.03,
    ),
)

#: Long-running compute/analytics (Natural-Resources-style): sustained
#: load, CoV well below 1.
STEADY_BATCH = WorkloadClassProfile(
    name="steady-batch",
    workload_class=WorkloadClass.STEADY_BATCH,
    mean_util=0.12,
    correlation_sensitivity=0.25,
    cpu=CpuModel(
        diurnal_amplitude=0.3,
        weekend_factor=0.9,
        lognormal_sigma=0.25,
        ar1_phi=0.85,
        ar1_sigma=0.12,
        spike_rate_per_hour=0.001,
        spike_alpha=2.0,
        spike_scale=0.1,
        spike_max=0.5,
    ),
    memory=MemoryModel(
        base_frac=0.45,
        dynamic_frac=0.15,
        load_exponent=0.7,
        smoothing_alpha=0.15,
        noise_sigma=0.02,
    ),
)

#: Nightly/weekly scheduled jobs: predictable high peaks over a quiet base.
SCHEDULED_BATCH = WorkloadClassProfile(
    name="scheduled-batch",
    workload_class=WorkloadClass.SCHEDULED_BATCH,
    mean_util=0.05,
    correlation_sensitivity=0.3,
    cpu=CpuModel(
        diurnal_amplitude=0.2,
        weekend_factor=0.8,
        lognormal_sigma=0.35,
        ar1_phi=0.7,
        ar1_sigma=0.15,
        scheduled=ScheduledJobSpec(
            period_hours=24,
            start_hour=2,
            duration_hours=2,
            level=0.35,
            jitter_hours=1,
        ),
    ),
    memory=MemoryModel(
        base_frac=0.30,
        dynamic_frac=0.20,
        load_exponent=0.8,
        smoothing_alpha=0.35,
        noise_sigma=0.03,
    ),
)

#: Near-idle servers (common in the Airlines datacenter at 1% mean CPU).
IDLE = WorkloadClassProfile(
    name="idle",
    workload_class=WorkloadClass.IDLE,
    mean_util=0.006,
    correlation_sensitivity=0.4,
    cpu=CpuModel(
        diurnal_amplitude=0.4,
        weekend_factor=0.9,
        lognormal_sigma=0.40,
        ar1_phi=0.6,
        ar1_sigma=0.18,
        spike_rate_per_hour=0.0015,
        spike_alpha=2.0,
        spike_scale=0.03,
        spike_max=0.25,
    ),
    memory=MemoryModel(
        base_frac=0.40,
        dynamic_frac=0.08,
        load_exponent=0.8,
        smoothing_alpha=0.2,
        noise_sigma=0.02,
    ),
)


def _generate_cpu_util(
    profile: WorkloadClassProfile,
    mean_util: float,
    n_hours: int,
    rng: np.random.Generator,
    shared_log_factor: Optional[np.ndarray] = None,
    event_multiplier: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Generate one server's CPU utilization trace (fractions in [0, 1])."""
    cpu = profile.cpu
    peak_hour = float(rng.uniform(9.0, 18.0))
    shape = models.diurnal_profile(
        n_hours,
        peak_hour=peak_hour,
        amplitude=cpu.diurnal_amplitude,
        width_hours=cpu.diurnal_width_hours,
    )
    shape = shape * models.weekly_profile(
        n_hours, weekend_factor=cpu.weekend_factor
    )
    shape = shape * models.lognormal_noise(n_hours, cpu.lognormal_sigma, rng)
    shape = shape * np.exp(models.ar1_noise(n_hours, cpu.ar1_phi, cpu.ar1_sigma, rng))
    if shared_log_factor is not None:
        shape = shape * np.exp(
            profile.correlation_sensitivity * shared_log_factor
        )
    util = mean_util * shape / shape.mean()
    if cpu.scheduled is not None:
        job = cpu.scheduled
        util = util + models.scheduled_jobs(
            n_hours,
            period_hours=job.period_hours,
            start_hour=int(rng.integers(0, job.period_hours)),
            duration_hours=job.duration_hours,
            level=job.level * float(rng.uniform(0.7, 1.3)),
            jitter_hours=job.jitter_hours,
            rng=rng,
        )
    if cpu.spike_rate_per_hour > 0:
        util = util + models.pareto_spikes(
            n_hours,
            rate_per_hour=cpu.spike_rate_per_hour,
            alpha=cpu.spike_alpha,
            scale=cpu.spike_scale,
            max_spike=cpu.spike_max,
            rng=rng,
        )
    if event_multiplier is not None:
        # Flash events multiply actual load: applied after the mean is
        # anchored, so correlated peaks add genuine demand on top.
        util = util * event_multiplier
    return np.clip(util, _UTIL_FLOOR, 1.0)


def _generate_memory_gb(
    profile: WorkloadClassProfile,
    cpu_util: np.ndarray,
    configured_gb: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate the committed-memory trace that tracks a CPU trace."""
    mem = profile.memory
    load_peak = max(float(cpu_util.max()), 1e-9)
    normalized_load = (cpu_util / load_peak) ** mem.load_exponent
    driver = models.ewma_smooth(normalized_load, mem.smoothing_alpha)
    committed_frac = mem.base_frac + mem.dynamic_frac * driver
    if mem.noise_sigma > 0:
        committed_frac = committed_frac * models.lognormal_noise(
            cpu_util.size, mem.noise_sigma, rng
        )
    committed = configured_gb * committed_frac
    return np.clip(committed, 0.01 * configured_gb, configured_gb)


def generate_server_trace(
    vm_id: str,
    profile: WorkloadClassProfile,
    source_model: ServerModel,
    n_hours: int,
    rng: np.random.Generator,
    *,
    mean_util: Optional[float] = None,
    labels: Optional[dict] = None,
    shared_log_factor: Optional[np.ndarray] = None,
    event_multiplier: Optional[np.ndarray] = None,
) -> ServerTrace:
    """Generate a full :class:`ServerTrace` for one source server.

    Parameters
    ----------
    vm_id:
        Identifier for the resulting VM.
    profile:
        Workload class profile controlling the statistical models.
    source_model:
        Hardware of the source physical server; bounds utilization and
        sets the configured memory.
    n_hours:
        Trace length (the paper uses 30 days = 720 hourly points).
    rng:
        Random generator; pass a per-server child of a seeded
        ``SeedSequence`` for reproducibility.
    mean_util:
        Per-server target mean utilization; defaults to the profile's.
    """
    if n_hours <= 0:
        raise ConfigurationError(f"n_hours must be > 0, got {n_hours}")
    target_mean = profile.mean_util if mean_util is None else mean_util
    if not 0 < target_mean <= 1:
        raise ConfigurationError(
            f"{vm_id}: mean_util must be in (0, 1], got {target_mean}"
        )
    cpu_util = _generate_cpu_util(
        profile,
        target_mean,
        n_hours,
        rng,
        shared_log_factor=shared_log_factor,
        event_multiplier=event_multiplier,
    )
    memory_gb = _generate_memory_gb(
        profile, cpu_util, source_model.memory_gb, rng
    )
    vm = VirtualMachine(
        vm_id=vm_id,
        memory_config_gb=source_model.memory_gb,
        workload_class=profile.workload_class,
        labels=dict(labels or {}, profile=profile.name),
    )
    return ServerTrace(
        vm=vm,
        source_spec=ServerSpec.from_model(source_model),
        cpu_util=ResourceTrace(cpu_util, unit="fraction"),
        memory_gb=ResourceTrace(memory_gb, unit="GB"),
    )


def _event_multiplier(
    events: Sequence[Tuple[int, int, float]],
    n_hours: int,
    participation: float,
    rng: np.random.Generator,
) -> Optional[np.ndarray]:
    """One server's flash-event exposure: a multiplicative load series."""
    if not events or participation <= 0:
        return None
    multiplier = np.ones(n_hours)
    hit_any = False
    for start, duration, magnitude in events:
        if rng.random() >= participation:
            continue
        hit_any = True
        # The server's own severity varies around the event magnitude.
        severity = magnitude * float(rng.uniform(0.5, 1.5))
        # The whole ramp at once: within one event the hit timestamps are
        # distinct, so an elementwise maximum over the slice reproduces
        # the per-offset max writes exactly.
        count = min(duration, n_hours - start)
        if count <= 0:
            continue
        decay = 1.0 - np.arange(count) / duration
        window = slice(start, start + count)
        np.maximum(
            multiplier[window], 1.0 + severity * decay, out=multiplier[window]
        )
    return multiplier if hit_any else None


def generate_trace_set(
    name: str,
    specs: Sequence[Tuple[WorkloadClassProfile, ServerModel, int]],
    n_hours: int,
    seed: int,
    *,
    mean_util_spread_sigma: float = 0.7,
    mean_util_bounds: Tuple[float, float] = (0.002, 0.6),
    correlation: Optional[CorrelationModel] = None,
) -> TraceSet:
    """Generate a trace set from ``(profile, hardware, count)`` groups.

    Per-server mean utilizations are drawn lognormally around each
    profile's target mean (``mean_util_spread_sigma`` in log space) to
    reproduce the wide cross-server utilization spread of real
    datacenters, then clipped to ``mean_util_bounds``.

    When a :class:`CorrelationModel` is given, all servers share one
    AR(1) business factor and one flash-event calendar, each scaled by
    the server's class ``correlation_sensitivity``.
    """
    if n_hours <= 0:
        raise ConfigurationError(f"n_hours must be > 0, got {n_hours}")
    if mean_util_spread_sigma < 0:
        raise ConfigurationError("mean_util_spread_sigma must be >= 0")
    seed_sequence = np.random.SeedSequence(seed)
    shared_rng = np.random.default_rng(seed_sequence.spawn(1)[0])
    shared_log_factor = None
    events: Sequence[Tuple[int, int, float]] = ()
    if correlation is not None:
        shared_log_factor = correlation.draw_shared_log_factor(
            n_hours, shared_rng
        )
        events = correlation.draw_events(n_hours, shared_rng)
    trace_set = TraceSet(name=name)
    server_index = 0
    for profile, hardware, count in specs:
        if count < 0:
            raise ConfigurationError(
                f"{profile.name}: count must be >= 0, got {count}"
            )
        for _ in range(count):
            rng = np.random.default_rng(seed_sequence.spawn(1)[0])
            spread = float(
                rng.lognormal(
                    mean=-0.5 * mean_util_spread_sigma**2,
                    sigma=mean_util_spread_sigma,
                )
            )
            mean_util = float(
                np.clip(profile.mean_util * spread, *mean_util_bounds)
            )
            event_multiplier = None
            if correlation is not None:
                event_multiplier = _event_multiplier(
                    events,
                    n_hours,
                    correlation.event_participation
                    * profile.correlation_sensitivity,
                    rng,
                )
            trace_set.add(
                generate_server_trace(
                    vm_id=f"{name}-vm{server_index:04d}",
                    profile=profile,
                    source_model=hardware,
                    n_hours=n_hours,
                    rng=rng,
                    mean_util=mean_util,
                    shared_log_factor=shared_log_factor,
                    event_multiplier=event_multiplier,
                )
            )
            server_index += 1
    return trace_set
