"""Synthetic server trace generation.

The paper's traces are proprietary (30-day hourly monitoring of >3000
production Windows servers).  This module generates statistically
equivalent traces: each server draws a *workload class profile* (web,
steady batch, scheduled batch, idle) that controls its CPU burstiness
model and its memory-follows-load model.  The four datacenter presets in
:mod:`repro.workloads.datacenters` are mixtures of these classes tuned to
reproduce the paper's Section-4 measurements.

CPU generation pipeline (per server):

1. deterministic shape: diurnal bump × weekend dip,
2. multiplicative stochastic texture: i.i.d. lognormal × exp(AR(1)),
3. rescale to the server's target mean utilization,
4. additive scheduled-batch windows and Pareto spikes,
5. clip to [floor, 1.0] (a source server cannot exceed its own capacity).

Memory generation: committed memory = configured × (base + dynamic ×
smoothed(load^exponent)) with small multiplicative noise — the sub-linear
exponent and smoothing are what make memory an order of magnitude less
bursty than CPU (Observation 2; validated against the paper's Olio
anecdote by :mod:`repro.workloads.appmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.infrastructure.server import ServerSpec
from repro.numerics import approx_eq
from repro.infrastructure.vm import VirtualMachine, WorkloadClass
from repro.metrics.catalog import ServerModel
from repro.workloads import models
from repro.workloads.fastdraw import (
    DrawBuffers,
    DrawParams,
    FastDrawKernel,
    make_fast_drawer,
)
from repro.workloads.fastseed import FastSeeder, make_fast_seeder
from repro.workloads.store import TraceStore
from repro.workloads.trace import ResourceTrace, ServerTrace, TraceSet

__all__ = [
    "ScheduledJobSpec",
    "CpuModel",
    "MemoryModel",
    "CorrelationModel",
    "WorkloadClassProfile",
    "TraceBlock",
    "generate_server_trace",
    "generate_trace_blocks",
    "generate_trace_matrix",
    "generate_trace_set",
    "WEB_BURSTY",
    "WEB_MODERATE",
    "STEADY_BATCH",
    "SCHEDULED_BATCH",
    "IDLE",
]

_UTIL_FLOOR = 0.002
#: ``models.pareto_spikes`` default duration cap, pinned for the batched
#: draw loop (both engines must consume identical duration draws).
_SPIKE_MAX_DURATION_HOURS = 3


@dataclass(frozen=True)
class CorrelationModel:
    """Cross-server demand correlation within a datacenter.

    Two mechanisms make enterprise workloads peak *together* (and thereby
    limit the statistical-multiplexing gains stochastic consolidation can
    bank on — the stability of correlation is Observation 5's stated
    reason why PCP works, and correlated bursts are what put dynamic
    consolidation at contention risk):

    * a shared mean-one AR(1) *business factor* multiplying every
      server's load (market open, month-end, campaign traffic), and
    * *flash events*: Poisson-arriving episodes during which a random
      subset of servers simultaneously multiply their demand.

    Each workload class scales its exposure via
    ``WorkloadClassProfile.correlation_sensitivity`` — front-end web
    servers ride every market event; back-office batch barely notices.
    """

    ar1_phi: float = 0.85
    ar1_sigma: float = 0.15
    event_rate_per_day: float = 0.5
    event_participation: float = 0.35
    event_magnitude_scale: float = 1.5
    event_alpha: float = 1.8
    event_max_multiplier: float = 8.0
    event_max_duration_hours: int = 3

    def __post_init__(self) -> None:
        if not -1.0 < self.ar1_phi < 1.0:
            raise ConfigurationError("ar1_phi must be in (-1, 1)")
        if self.ar1_sigma < 0:
            raise ConfigurationError("ar1_sigma must be >= 0")
        if self.event_rate_per_day < 0:
            raise ConfigurationError("event_rate_per_day must be >= 0")
        if not 0 <= self.event_participation <= 1:
            raise ConfigurationError(
                "event_participation must be in [0, 1]"
            )
        if self.event_magnitude_scale < 0:
            raise ConfigurationError("event_magnitude_scale must be >= 0")
        if self.event_alpha <= 0:
            raise ConfigurationError("event_alpha must be > 0")
        if self.event_max_multiplier < 1:
            raise ConfigurationError("event_max_multiplier must be >= 1")
        if self.event_max_duration_hours < 1:
            raise ConfigurationError(
                "event_max_duration_hours must be >= 1"
            )

    def draw_shared_log_factor(
        self, n_hours: int, rng: np.random.Generator
    ) -> np.ndarray:
        """The shared AR(1) log-factor all servers are exposed to."""
        return models.ar1_noise(n_hours, self.ar1_phi, self.ar1_sigma, rng)

    def draw_events(
        self, n_hours: int, rng: np.random.Generator
    ) -> "list[tuple[int, int, float]]":
        """Flash events as ``(start_hour, duration, extra_multiplier)``."""
        n_events = rng.poisson(self.event_rate_per_day * n_hours / 24.0)
        events = []
        for _ in range(n_events):
            start = int(rng.integers(0, n_hours))
            duration = int(
                rng.integers(1, self.event_max_duration_hours + 1)
            )
            magnitude = min(
                self.event_magnitude_scale * rng.pareto(self.event_alpha),
                self.event_max_multiplier - 1.0,
            )
            events.append((start, duration, magnitude))
        return events


@dataclass(frozen=True)
class ScheduledJobSpec:
    """Periodic batch job parameters (see :func:`models.scheduled_jobs`)."""

    period_hours: int = 24
    start_hour: int = 2
    duration_hours: int = 2
    level: float = 0.4
    jitter_hours: int = 1


@dataclass(frozen=True)
class CpuModel:
    """CPU burstiness model for one workload class."""

    diurnal_amplitude: float = 1.0
    diurnal_width_hours: float = 4.0
    weekend_factor: float = 0.6
    lognormal_sigma: float = 0.5
    ar1_phi: float = 0.7
    ar1_sigma: float = 0.2
    spike_rate_per_hour: float = 0.0
    spike_alpha: float = 1.6
    spike_scale: float = 0.15
    spike_max: float = 0.9
    scheduled: Optional[ScheduledJobSpec] = None

    def __post_init__(self) -> None:
        if self.lognormal_sigma < 0 or self.ar1_sigma < 0:
            raise ConfigurationError("noise sigmas must be >= 0")
        if self.spike_rate_per_hour < 0:
            raise ConfigurationError("spike_rate_per_hour must be >= 0")


@dataclass(frozen=True)
class MemoryModel:
    """Committed-memory model for one workload class.

    ``committed = configured × (base_frac + dynamic_frac × f(load))`` with
    ``f(load) = ewma(load_normalized ** load_exponent)``.
    """

    base_frac: float = 0.30
    dynamic_frac: float = 0.20
    load_exponent: float = 0.6
    smoothing_alpha: float = 0.3
    noise_sigma: float = 0.03

    def __post_init__(self) -> None:
        if not 0 <= self.base_frac <= 1:
            raise ConfigurationError(
                f"base_frac must be in [0, 1], got {self.base_frac}"
            )
        if self.dynamic_frac < 0 or self.base_frac + self.dynamic_frac > 1.0:
            raise ConfigurationError(
                "need 0 <= base_frac + dynamic_frac <= 1, got "
                f"{self.base_frac} + {self.dynamic_frac}"
            )
        if self.load_exponent <= 0:
            raise ConfigurationError(
                f"load_exponent must be > 0, got {self.load_exponent}"
            )
        if not 0 < self.smoothing_alpha <= 1:
            raise ConfigurationError(
                f"smoothing_alpha must be in (0, 1], got {self.smoothing_alpha}"
            )


@dataclass(frozen=True)
class WorkloadClassProfile:
    """A named workload class: CPU + memory models and metadata."""

    name: str
    workload_class: str
    mean_util: float
    cpu: CpuModel = field(default_factory=CpuModel)
    memory: MemoryModel = field(default_factory=MemoryModel)
    #: Exposure to the datacenter's :class:`CorrelationModel` (0 = immune,
    #: 1 = full exposure).  Front-end web is high; batch is low.
    correlation_sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.mean_util <= 1:
            raise ConfigurationError(
                f"{self.name}: mean_util must be in (0, 1], got {self.mean_util}"
            )
        if not 0 <= self.correlation_sensitivity <= 1:
            raise ConfigurationError(
                f"{self.name}: correlation_sensitivity must be in [0, 1]"
            )
        WorkloadClass.top_level(self.workload_class)

    def with_mean_util(self, mean_util: float) -> "WorkloadClassProfile":
        """Copy of this profile at a different target mean utilization."""
        return replace(self, mean_util=mean_util)


#: Heavy-tailed interactive web workload (Banking-style): CoV >= 1,
#: peak-to-average often above 5-10 at short consolidation intervals.
WEB_BURSTY = WorkloadClassProfile(
    name="web-bursty",
    workload_class=WorkloadClass.WEB_INTERACTIVE,
    mean_util=0.05,
    cpu=CpuModel(
        diurnal_amplitude=1.8,
        weekend_factor=0.5,
        lognormal_sigma=0.55,
        ar1_phi=0.6,
        ar1_sigma=0.20,
        spike_rate_per_hour=0.007,
        spike_alpha=1.5,
        spike_scale=0.10,
        spike_max=0.85,
    ),
    memory=MemoryModel(
        base_frac=0.22,
        dynamic_frac=0.28,
        load_exponent=0.6,
        smoothing_alpha=0.25,
        noise_sigma=0.04,
    ),
)

#: Moderately bursty web workload (Airlines/Beverage-style front ends).
WEB_MODERATE = WorkloadClassProfile(
    name="web-moderate",
    workload_class=WorkloadClass.WEB_INTERACTIVE,
    mean_util=0.04,
    correlation_sensitivity=0.7,
    cpu=CpuModel(
        diurnal_amplitude=1.0,
        weekend_factor=0.6,
        lognormal_sigma=0.50,
        ar1_phi=0.7,
        ar1_sigma=0.20,
        spike_rate_per_hour=0.005,
        spike_alpha=1.8,
        spike_scale=0.08,
        spike_max=0.6,
    ),
    memory=MemoryModel(
        base_frac=0.35,
        dynamic_frac=0.15,
        load_exponent=0.6,
        smoothing_alpha=0.2,
        noise_sigma=0.03,
    ),
)

#: Long-running compute/analytics (Natural-Resources-style): sustained
#: load, CoV well below 1.
STEADY_BATCH = WorkloadClassProfile(
    name="steady-batch",
    workload_class=WorkloadClass.STEADY_BATCH,
    mean_util=0.12,
    correlation_sensitivity=0.25,
    cpu=CpuModel(
        diurnal_amplitude=0.3,
        weekend_factor=0.9,
        lognormal_sigma=0.25,
        ar1_phi=0.85,
        ar1_sigma=0.12,
        spike_rate_per_hour=0.001,
        spike_alpha=2.0,
        spike_scale=0.1,
        spike_max=0.5,
    ),
    memory=MemoryModel(
        base_frac=0.45,
        dynamic_frac=0.15,
        load_exponent=0.7,
        smoothing_alpha=0.15,
        noise_sigma=0.02,
    ),
)

#: Nightly/weekly scheduled jobs: predictable high peaks over a quiet base.
SCHEDULED_BATCH = WorkloadClassProfile(
    name="scheduled-batch",
    workload_class=WorkloadClass.SCHEDULED_BATCH,
    mean_util=0.05,
    correlation_sensitivity=0.3,
    cpu=CpuModel(
        diurnal_amplitude=0.2,
        weekend_factor=0.8,
        lognormal_sigma=0.35,
        ar1_phi=0.7,
        ar1_sigma=0.15,
        scheduled=ScheduledJobSpec(
            period_hours=24,
            start_hour=2,
            duration_hours=2,
            level=0.35,
            jitter_hours=1,
        ),
    ),
    memory=MemoryModel(
        base_frac=0.30,
        dynamic_frac=0.20,
        load_exponent=0.8,
        smoothing_alpha=0.35,
        noise_sigma=0.03,
    ),
)

#: Near-idle servers (common in the Airlines datacenter at 1% mean CPU).
IDLE = WorkloadClassProfile(
    name="idle",
    workload_class=WorkloadClass.IDLE,
    mean_util=0.006,
    correlation_sensitivity=0.4,
    cpu=CpuModel(
        diurnal_amplitude=0.4,
        weekend_factor=0.9,
        lognormal_sigma=0.40,
        ar1_phi=0.6,
        ar1_sigma=0.18,
        spike_rate_per_hour=0.0015,
        spike_alpha=2.0,
        spike_scale=0.03,
        spike_max=0.25,
    ),
    memory=MemoryModel(
        base_frac=0.40,
        dynamic_frac=0.08,
        load_exponent=0.8,
        smoothing_alpha=0.2,
        noise_sigma=0.02,
    ),
)


def _generate_cpu_util(
    profile: WorkloadClassProfile,
    mean_util: float,
    n_hours: int,
    rng: np.random.Generator,
    shared_log_factor: Optional[np.ndarray] = None,
    event_multiplier: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Generate one server's CPU utilization trace (fractions in [0, 1])."""
    cpu = profile.cpu
    peak_hour = float(rng.uniform(9.0, 18.0))
    shape = models.diurnal_profile(
        n_hours,
        peak_hour=peak_hour,
        amplitude=cpu.diurnal_amplitude,
        width_hours=cpu.diurnal_width_hours,
    )
    shape = shape * models.weekly_profile(
        n_hours, weekend_factor=cpu.weekend_factor
    )
    shape = shape * models.lognormal_noise(n_hours, cpu.lognormal_sigma, rng)
    shape = shape * np.exp(models.ar1_noise(n_hours, cpu.ar1_phi, cpu.ar1_sigma, rng))
    if shared_log_factor is not None:
        shape = shape * np.exp(
            profile.correlation_sensitivity * shared_log_factor
        )
    util = mean_util * shape / shape.mean()
    if cpu.scheduled is not None:
        job = cpu.scheduled
        util = util + models.scheduled_jobs(
            n_hours,
            period_hours=job.period_hours,
            start_hour=int(rng.integers(0, job.period_hours)),
            duration_hours=job.duration_hours,
            level=job.level * float(rng.uniform(0.7, 1.3)),
            jitter_hours=job.jitter_hours,
            rng=rng,
        )
    if cpu.spike_rate_per_hour > 0:
        util = util + models.pareto_spikes(
            n_hours,
            rate_per_hour=cpu.spike_rate_per_hour,
            alpha=cpu.spike_alpha,
            scale=cpu.spike_scale,
            max_spike=cpu.spike_max,
            rng=rng,
        )
    if event_multiplier is not None:
        # Flash events multiply actual load: applied after the mean is
        # anchored, so correlated peaks add genuine demand on top.
        util = util * event_multiplier
    return np.clip(util, _UTIL_FLOOR, 1.0)


def _generate_memory_gb(
    profile: WorkloadClassProfile,
    cpu_util: np.ndarray,
    configured_gb: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate the committed-memory trace that tracks a CPU trace."""
    mem = profile.memory
    load_peak = max(float(cpu_util.max()), 1e-9)
    normalized_load = (cpu_util / load_peak) ** mem.load_exponent
    driver = models.ewma_smooth(normalized_load, mem.smoothing_alpha)
    committed_frac = mem.base_frac + mem.dynamic_frac * driver
    if mem.noise_sigma > 0:
        committed_frac = committed_frac * models.lognormal_noise(
            cpu_util.size, mem.noise_sigma, rng
        )
    committed = configured_gb * committed_frac
    return np.clip(committed, 0.01 * configured_gb, configured_gb)


def generate_server_trace(
    vm_id: str,
    profile: WorkloadClassProfile,
    source_model: ServerModel,
    n_hours: int,
    rng: np.random.Generator,
    *,
    mean_util: Optional[float] = None,
    labels: Optional[dict] = None,
    shared_log_factor: Optional[np.ndarray] = None,
    event_multiplier: Optional[np.ndarray] = None,
) -> ServerTrace:
    """Generate a full :class:`ServerTrace` for one source server.

    Parameters
    ----------
    vm_id:
        Identifier for the resulting VM.
    profile:
        Workload class profile controlling the statistical models.
    source_model:
        Hardware of the source physical server; bounds utilization and
        sets the configured memory.
    n_hours:
        Trace length (the paper uses 30 days = 720 hourly points).
    rng:
        Random generator; pass a per-server child of a seeded
        ``SeedSequence`` for reproducibility.
    mean_util:
        Per-server target mean utilization; defaults to the profile's.
    """
    if n_hours <= 0:
        raise ConfigurationError(f"n_hours must be > 0, got {n_hours}")
    target_mean = profile.mean_util if mean_util is None else mean_util
    if not 0 < target_mean <= 1:
        raise ConfigurationError(
            f"{vm_id}: mean_util must be in (0, 1], got {target_mean}"
        )
    cpu_util = _generate_cpu_util(
        profile,
        target_mean,
        n_hours,
        rng,
        shared_log_factor=shared_log_factor,
        event_multiplier=event_multiplier,
    )
    memory_gb = _generate_memory_gb(
        profile, cpu_util, source_model.memory_gb, rng
    )
    vm = VirtualMachine(
        vm_id=vm_id,
        memory_config_gb=source_model.memory_gb,
        workload_class=profile.workload_class,
        labels=dict(labels or {}, profile=profile.name),
    )
    return ServerTrace(
        vm=vm,
        source_spec=ServerSpec.from_model(source_model),
        cpu_util=ResourceTrace(cpu_util, unit="fraction"),
        memory_gb=ResourceTrace(memory_gb, unit="GB"),
    )


def _event_multiplier(
    events: Sequence[Tuple[int, int, float]],
    n_hours: int,
    participation: float,
    rng: np.random.Generator,
) -> Optional[np.ndarray]:
    """One server's flash-event exposure: a multiplicative load series."""
    if not events or participation <= 0:
        return None
    multiplier = np.ones(n_hours)
    hit_any = False
    for start, duration, magnitude in events:
        if rng.random() >= participation:
            continue
        hit_any = True
        # The server's own severity varies around the event magnitude.
        severity = magnitude * float(rng.uniform(0.5, 1.5))
        # The whole ramp at once: within one event the hit timestamps are
        # distinct, so an elementwise maximum over the slice reproduces
        # the per-offset max writes exactly.
        count = min(duration, n_hours - start)
        if count <= 0:
            continue
        decay = 1.0 - np.arange(count) / duration
        window = slice(start, start + count)
        np.maximum(
            multiplier[window], 1.0 + severity * decay, out=multiplier[window]
        )
    return multiplier if hit_any else None


# ----------------------------------------------------------------------
# Batched (store-first) generation engine
#
# The array engine draws each VM's randomness from the same
# ``SeedSequence(seed, spawn_key=(index + 1,))`` stream as the scalar
# reference — per-VM draws stay per-VM calls on one reused generator —
# but all trace *arithmetic* runs on ``(n_vms, n_hours)`` matrices
# written straight into columnar storage.  Every batched operation below
# is elementwise-identical to the scalar pipeline (same ufuncs, same
# operation order per element), so the engines are bit-identical; the
# equivalence suite in tests/workloads/test_engine_equivalence.py pins
# that across every profile, correlation model, and flash calendar.

#: Scalar-reference uniform ranges, written as ``low + (high - low) * u``
#: exactly like ``Generator.uniform`` evaluates them.
_PEAK_HOUR_LOW, _PEAK_HOUR_HIGH = 9.0, 18.0
_SCHED_LEVEL_LOW, _SCHED_LEVEL_HIGH = 0.7, 1.3
_EVENT_SEVERITY_LOW, _EVENT_SEVERITY_HIGH = 0.5, 1.5


@dataclass(frozen=True)
class TraceBlock:
    """One generated row block: a profile group's slice of the fleet.

    ``cpu_util``/``memory_gb`` are ``(count, n_hours)`` matrices whose
    row ``k`` belongs to ``vm_ids[k]`` (global fleet row
    ``start_index + k``).  Blocks are what the streaming engine yields:
    big enough for batched math, small enough that a 100k fleet never
    materializes in RAM.
    """

    profile: WorkloadClassProfile
    source_model: ServerModel
    start_index: int
    vm_ids: Tuple[str, ...]
    cpu_util: np.ndarray
    memory_gb: np.ndarray

    def __post_init__(self) -> None:
        if self.start_index < 0:
            raise ConfigurationError(
                f"start_index must be >= 0, got {self.start_index}"
            )
        shape = (len(self.vm_ids), self.cpu_util.shape[-1])
        if self.cpu_util.shape != shape or self.memory_gb.shape != shape:
            raise ConfigurationError(
                f"block matrices must be {shape}: cpu "
                f"{self.cpu_util.shape}, memory {self.memory_gb.shape}"
            )

    @property
    def count(self) -> int:
        return len(self.vm_ids)

    @property
    def n_hours(self) -> int:
        return int(self.cpu_util.shape[1])

    @property
    def source_spec(self) -> ServerSpec:
        return ServerSpec.from_model(self.source_model)

    def virtual_machines(self) -> List[VirtualMachine]:
        """The block's VM objects (built on demand, rows stay columnar)."""
        memory_gb = self.source_model.memory_gb
        workload_class = self.profile.workload_class
        labels = {"profile": self.profile.name}
        return [
            VirtualMachine(
                vm_id=vm_id,
                memory_config_gb=memory_gb,
                workload_class=workload_class,
                labels=dict(labels),
            )
            for vm_id in self.vm_ids
        ]


def _shared_factors(
    correlation: Optional[CorrelationModel], n_hours: int, seed: int
) -> Tuple[Optional[np.ndarray], Tuple[Tuple[int, int, float], ...]]:
    """The fleet-wide correlation draws, from the reference shared stream.

    ``SeedSequence(seed).spawn(1)[0]`` is exactly
    ``SeedSequence(seed, spawn_key=(0,))``, so the shared business factor
    and flash calendar match the scalar path without touching the parent
    sequence's spawn bookkeeping.
    """
    if correlation is None:
        return None, ()
    shared_rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(0,))
    )
    shared_log_factor = correlation.draw_shared_log_factor(n_hours, shared_rng)
    events = tuple(correlation.draw_events(n_hours, shared_rng))
    return shared_log_factor, events


def _plan_blocks(
    specs: Sequence[Tuple[WorkloadClassProfile, ServerModel, int]],
    *,
    vm_range: Optional[Tuple[int, int]] = None,
    block_rows: Optional[int] = None,
) -> Tuple[List[Tuple[WorkloadClassProfile, ServerModel, int, int]], int]:
    """Split the spec groups into ``(profile, hardware, start, count)`` units.

    ``vm_range`` clips the plan to global fleet rows ``[start, stop)`` —
    per-VM streams are independent, so a clipped plan generates rows
    bit-identical to the same rows of the full fleet.  ``block_rows``
    caps unit size so streaming consumers bound their peak memory.
    """
    if block_rows is not None and block_rows <= 0:
        raise ConfigurationError(
            f"block_rows must be > 0, got {block_rows}"
        )
    total = 0
    groups: List[Tuple[WorkloadClassProfile, ServerModel, int, int]] = []
    for profile, hardware, count in specs:
        if count < 0:
            raise ConfigurationError(
                f"{profile.name}: count must be >= 0, got {count}"
            )
        groups.append((profile, hardware, total, count))
        total += count
    if vm_range is not None:
        range_start, range_stop = int(vm_range[0]), int(vm_range[1])
        if not 0 <= range_start <= range_stop <= total:
            raise ConfigurationError(
                f"vm_range {vm_range} out of bounds for {total} servers"
            )
    plan: List[Tuple[WorkloadClassProfile, ServerModel, int, int]] = []
    for profile, hardware, group_start, count in groups:
        lo, hi = group_start, group_start + count
        if vm_range is not None:
            lo = max(lo, range_start)
            hi = min(hi, range_stop)
        if lo >= hi:
            continue
        step = (hi - lo) if block_rows is None else block_rows
        for start in range(lo, hi, step):
            plan.append((profile, hardware, start, min(step, hi - start)))
    return plan, total


def _draw_block_kernel(
    profile: WorkloadClassProfile,
    n_hours: int,
    count: int,
    state_arrays: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    drawer: FastDrawKernel,
    *,
    spread_sigma: float,
    events: Tuple[Tuple[int, int, float], ...],
    participation: float,
) -> dict:
    """C-kernel twin of the :func:`_draw_block` python loop.

    Allocates the same output buffers, hands them (with the per-VM PCG64
    state words) to the compiled draw loop, and reassembles the draws
    dict.  Spike buffers are sized from the Poisson expectation; if a
    block beats the 12-sigma headroom the kernel reports the exact need
    and the block is redrawn — per-VM state installs make that rerun
    deterministic.
    """
    n = n_hours
    cpu = profile.cpu
    mem = profile.memory
    spread_mu = -0.5 * spread_sigma**2
    ln_sigma = cpu.lognormal_sigma
    mem_sigma = mem.noise_sigma
    job = cpu.scheduled
    do_spikes = cpu.spike_rate_per_hour > 0 and cpu.spike_scale > 0
    spike_lam = cpu.spike_rate_per_hour * n
    n_events = len(events)
    do_events = n_events > 0 and participation > 0

    spreads = np.empty(count)
    peaks = np.empty(count)
    ln_rows = np.empty((count, n)) if ln_sigma > 0 else None
    gauss = np.empty((count, n)) if cpu.ar1_sigma > 0 else None
    mem_rows = np.empty((count, n)) if mem_sigma > 0 else None
    sched_starts = sched_levels = sched_jitters = None
    max_occurrences = 0
    if job is not None:
        max_occurrences = (n - 1) // job.period_hours + 1
        sched_starts = np.zeros(count, dtype=np.int64)
        sched_levels = np.empty(count)
        sched_jitters = np.zeros((count, max_occurrences), dtype=np.int64)
    spike_counts = spike_starts = spike_paretos = spike_durs = None
    spike_capacity = 0
    if do_spikes:
        expected = count * spike_lam
        spike_capacity = int(expected + 12.0 * np.sqrt(expected + 1.0)) + 64
        spike_counts = np.zeros(count, dtype=np.int64)
        spike_starts = np.empty(spike_capacity, dtype=np.int64)
        spike_paretos = np.empty(spike_capacity)
        spike_durs = np.empty(spike_capacity, dtype=np.int64)
    hit_events = hit_rows = hit_sevs = magnitudes = None
    if do_events:
        hit_capacity = count * n_events
        hit_events = np.empty(hit_capacity, dtype=np.int32)
        hit_rows = np.empty(hit_capacity, dtype=np.int32)
        hit_sevs = np.empty(hit_capacity)
        magnitudes = np.array([m for _, _, m in events], dtype=np.float64)

    params = DrawParams(
        count=count,
        n_hours=n,
        spread_mu=spread_mu,
        spread_sigma=spread_sigma,
        peak_low=_PEAK_HOUR_LOW,
        peak_span=_PEAK_HOUR_HIGH - _PEAK_HOUR_LOW,
        ln_mu=-0.5 * ln_sigma**2,
        ln_sigma=ln_sigma,
        draw_gauss=0 if gauss is None else 1,
        mem_mu=-0.5 * mem_sigma**2,
        mem_sigma=mem_sigma,
        has_sched=0 if job is None else 1,
        sched_period=0 if job is None else job.period_hours,
        sched_jitter=0 if job is None else job.jitter_hours,
        sched_max_occ=max_occurrences,
        sched_base_level=0.0 if job is None else job.level,
        level_low=_SCHED_LEVEL_LOW,
        level_span=_SCHED_LEVEL_HIGH - _SCHED_LEVEL_LOW,
        do_spikes=1 if do_spikes else 0,
        spike_lam=spike_lam,
        spike_alpha=cpu.spike_alpha,
        n_events=n_events,
        participation=participation,
        severity_low=_EVENT_SEVERITY_LOW,
        severity_span=_EVENT_SEVERITY_HIGH - _EVENT_SEVERITY_LOW,
    )

    def _address(array: Optional[np.ndarray]) -> int:
        return 0 if array is None else array.ctypes.data

    state_lo, state_hi, inc_lo, inc_hi = state_arrays
    needed = 0
    hits = 0
    while True:
        buffers = DrawBuffers(
            state_lo=state_lo.ctypes.data,
            state_hi=state_hi.ctypes.data,
            inc_lo=inc_lo.ctypes.data,
            inc_hi=inc_hi.ctypes.data,
            event_magnitudes=_address(magnitudes),
            spreads=spreads.ctypes.data,
            peaks=peaks.ctypes.data,
            ln_rows=_address(ln_rows),
            gauss=_address(gauss),
            mem_rows=_address(mem_rows),
            sched_starts=_address(sched_starts),
            sched_levels=_address(sched_levels),
            sched_jitters=_address(sched_jitters),
            spike_counts=_address(spike_counts),
            spike_starts=_address(spike_starts),
            spike_paretos=_address(spike_paretos),
            spike_durs=_address(spike_durs),
            spike_capacity=spike_capacity,
            hit_events=_address(hit_events),
            hit_rows=_address(hit_rows),
            hit_sevs=_address(hit_sevs),
        )
        overflowed, needed, hits = drawer.draw_block(params, buffers)
        if not overflowed:
            break
        spike_capacity = needed
        spike_starts = np.empty(spike_capacity, dtype=np.int64)
        spike_paretos = np.empty(spike_capacity)
        spike_durs = np.empty(spike_capacity, dtype=np.int64)

    event_rows = event_sevs = None
    if do_events:
        hit_events = hit_events[:hits]
        event_rows = []
        event_sevs = []
        for event_index in range(n_events):
            mask = hit_events == event_index
            event_rows.append(hit_rows[:hits][mask])
            event_sevs.append(hit_sevs[:hits][mask])
    return {
        "spreads": spreads,
        "peaks": peaks,
        "ln_rows": ln_rows,
        "gauss": gauss,
        "mem_rows": mem_rows,
        "sched": (
            None
            if job is None
            else (sched_starts, sched_levels, sched_jitters)
        ),
        "spikes": (
            None
            if not (do_spikes and needed > 0)
            else (
                np.repeat(np.arange(count, dtype=np.int64), spike_counts),
                spike_starts[:needed],
                np.minimum(
                    cpu.spike_scale * spike_paretos[:needed], cpu.spike_max
                ),
                spike_durs[:needed],
            )
        ),
        "event_rows": event_rows,
        "event_sevs": event_sevs,
    }


def _draw_block(
    profile: WorkloadClassProfile,
    n_hours: int,
    seed: int,
    start_index: int,
    count: int,
    *,
    spread_sigma: float,
    events: Tuple[Tuple[int, int, float], ...],
    participation: float,
    fast: Optional[FastSeeder],
    drawer: Optional[FastDrawKernel] = None,
) -> dict:
    """All per-VM random draws for one block, in reference stream order.

    Each VM's draws come from its own reference stream — installed into
    one reused generator via :class:`FastSeeder` when available, or a
    freshly constructed ``default_rng`` otherwise (bit-identical either
    way).  The per-VM draw *order* is the scalar pipeline's contract:
    mean-util spread, flash-event participation, diurnal peak hour,
    lognormal texture, AR(1) gaussians, scheduled-job draws, spike
    draws, memory noise — with every conditional matching the scalar
    guards so stream consumption is identical.

    With a verified :class:`FastDrawKernel` the whole loop runs as one
    compiled call through numpy's own C distribution functions —
    bit-identical again, minus the per-draw python dispatch.
    """
    if drawer is not None and fast is not None:
        state_arrays = fast.seeded_state_arrays(
            seed, start_index + 1, start_index + 1 + count
        )
        if state_arrays is not None:
            return _draw_block_kernel(
                profile,
                n_hours,
                count,
                state_arrays,
                drawer,
                spread_sigma=spread_sigma,
                events=events,
                participation=participation,
            )
    n = n_hours
    cpu = profile.cpu
    mem = profile.memory
    spread_mu = -0.5 * spread_sigma**2
    spreads = np.empty(count)
    peaks = np.empty(count)
    ln_sigma = cpu.lognormal_sigma
    ln_mu = -0.5 * ln_sigma**2
    ln_rows = np.empty((count, n)) if ln_sigma > 0 else None
    gauss = np.empty((count, n)) if cpu.ar1_sigma > 0 else None
    mem_sigma = mem.noise_sigma
    mem_mu = -0.5 * mem_sigma**2
    mem_rows = np.empty((count, n)) if mem_sigma > 0 else None
    job = cpu.scheduled
    sched_starts = sched_levels = sched_jitters = None
    if job is not None:
        sched_starts = np.zeros(count, dtype=np.int64)
        sched_levels = np.empty(count)
        max_occurrences = (n - 1) // job.period_hours + 1
        sched_jitters = np.zeros((count, max_occurrences), dtype=np.int64)
        period = job.period_hours
        jitter = job.jitter_hours
        base_level = job.level
    do_spikes = cpu.spike_rate_per_hour > 0 and cpu.spike_scale > 0
    spike_lam = cpu.spike_rate_per_hour * n
    spike_counts = np.zeros(count, dtype=np.int64) if do_spikes else None
    spike_starts: List[np.ndarray] = []
    spike_paretos: List[np.ndarray] = []
    spike_durs: List[np.ndarray] = []
    n_events = len(events)
    do_events = n_events > 0 and participation > 0
    event_rows: Optional[List[List[int]]] = None
    event_sevs: Optional[List[List[float]]] = None
    if do_events:
        two_events = 2 * n_events
        event_magnitudes = [magnitude for _, _, magnitude in events]
        event_rows = [[] for _ in range(n_events)]
        event_sevs = [[] for _ in range(n_events)]
        severity_span = _EVENT_SEVERITY_HIGH - _EVENT_SEVERITY_LOW
    peak_span = _PEAK_HOUR_HIGH - _PEAK_HOUR_LOW
    level_span = _SCHED_LEVEL_HIGH - _SCHED_LEVEL_LOW

    state_lists = None
    if fast is not None:
        state_lists = fast.seeded_state_lists(
            seed, start_index + 1, start_index + 1 + count
        )
    if state_lists is not None:
        states_0, states_1, states_2, states_3 = state_lists
        install = fast.install
        generator = fast.generator
        bit_generator = fast.bit_generator
        rand = generator.random
        lognormal = generator.lognormal
        standard_normal = generator.standard_normal
        integers = generator.integers
        poisson = generator.poisson
        pareto = generator.pareto

    for k in range(count):
        if state_lists is not None:
            install(states_0[k], states_1[k], states_2[k], states_3[k])
        else:
            generator = np.random.default_rng(
                np.random.SeedSequence(
                    seed, spawn_key=(start_index + 1 + k,)
                )
            )
            bit_generator = generator.bit_generator
            rand = generator.random
            lognormal = generator.lognormal
            standard_normal = generator.standard_normal
            integers = generator.integers
            poisson = generator.poisson
            pareto = generator.pareto
        spreads[k] = lognormal(spread_mu, spread_sigma)
        if do_events:
            # Clone trick: peek at enough uniforms for the worst case
            # (participation + severity per event), then rewind and
            # advance by what the scalar path actually consumed.
            if state_lists is not None:
                snapshot = fast.save()
            else:
                snapshot = bit_generator.state
            draws = rand(two_events).tolist()
            position = 0
            for event_index in range(n_events):
                hit = draws[position] < participation
                position += 1
                if hit:
                    severity_u = draws[position]
                    position += 1
                    event_rows[event_index].append(k)
                    event_sevs[event_index].append(
                        event_magnitudes[event_index]
                        * (_EVENT_SEVERITY_LOW + severity_span * severity_u)
                    )
            if state_lists is not None:
                fast.restore(snapshot)
            else:
                bit_generator.state = snapshot
            bit_generator.advance(position)
        peaks[k] = _PEAK_HOUR_LOW + peak_span * rand()
        if ln_rows is not None:
            ln_rows[k] = lognormal(ln_mu, ln_sigma, n)
        if gauss is not None:
            standard_normal(out=gauss[k])
        if job is not None:
            start = integers(0, period)
            sched_starts[k] = start
            sched_levels[k] = base_level * (
                _SCHED_LEVEL_LOW + level_span * rand()
            )
            if jitter > 0 and start < n:
                occurrences = (n - 1 - start) // period + 1
                sched_jitters[k, :occurrences] = integers(
                    -jitter, jitter + 1, size=occurrences
                )
        if do_spikes:
            n_spikes = poisson(spike_lam)
            if n_spikes > 0:
                spike_counts[k] = n_spikes
                spike_starts.append(integers(0, n, size=n_spikes))
                spike_paretos.append(pareto(cpu.spike_alpha, size=n_spikes))
                spike_durs.append(
                    integers(1, _SPIKE_MAX_DURATION_HOURS + 1, size=n_spikes)
                )
        if mem_rows is not None:
            mem_rows[k] = lognormal(mem_mu, mem_sigma, n)

    return {
        "spreads": spreads,
        "peaks": peaks,
        "ln_rows": ln_rows,
        "gauss": gauss,
        "mem_rows": mem_rows,
        "sched": (
            None
            if job is None
            else (sched_starts, sched_levels, sched_jitters)
        ),
        "spikes": (
            None
            if not spike_starts
            else (
                np.repeat(np.arange(count, dtype=np.int64), spike_counts),
                np.concatenate(spike_starts),
                # Same elementwise scale-and-cap the scalar path applies
                # per spike, batched over the block's spikes.
                np.minimum(
                    cpu.spike_scale * np.concatenate(spike_paretos),
                    cpu.spike_max,
                ),
                np.concatenate(spike_durs),
            )
        ),
        "event_rows": event_rows,
        "event_sevs": event_sevs,
    }


def _apply_event_hits(
    util: np.ndarray,
    events: Tuple[Tuple[int, int, float], ...],
    event_rows: List[List[int]],
    event_sevs: List[List[float]],
    n_hours: int,
) -> None:
    """Multiply flash-event severities into a util block, batched per event.

    The multiplier is materialized only over the union of event columns
    (a handful of hours out of the whole trace); rows that missed every
    event hold exactly ``1.0`` there, and ``x * 1.0 == x`` bitwise, so
    one sliced multiply per contiguous column run reproduces the scalar
    per-VM full-row multiply.
    """
    windows = []
    for (start, duration, _), rows, severities in zip(
        events, event_rows, event_sevs
    ):
        width = min(duration, n_hours - start)
        if width <= 0 or len(rows) == 0:
            continue
        windows.append(
            (
                start,
                width,
                duration,
                np.asarray(rows, dtype=np.intp),
                np.asarray(severities),
            )
        )
    if not windows:
        return
    columns = np.unique(
        np.concatenate(
            [np.arange(start, start + width) for start, width, *_ in windows]
        )
    )
    multiplier = np.ones((util.shape[0], columns.size))
    for start, width, duration, rows, severities in windows:
        positions = np.searchsorted(columns, np.arange(start, start + width))
        decay = 1.0 - np.arange(width) / duration
        contribution = 1.0 + severities[:, None] * decay[None, :]
        patch = multiplier[np.ix_(rows, positions)]
        np.maximum(patch, contribution, out=patch)
        multiplier[np.ix_(rows, positions)] = patch
    run_breaks = np.flatnonzero(np.diff(columns) > 1) + 1
    for run in np.split(np.arange(columns.size), run_breaks):
        first, last = int(run[0]), int(run[-1])
        column_slice = slice(int(columns[first]), int(columns[last]) + 1)
        util[:, column_slice] *= multiplier[:, first:last + 1]


def _add_spikes_inplace(
    util: np.ndarray,
    *,
    rows: np.ndarray,
    starts: np.ndarray,
    magnitudes: np.ndarray,
    durations: np.ndarray,
    n_hours: int,
) -> None:
    """Add the spike overlay to ``util`` without a dense scatter matrix.

    Bit-identical to ``util += models.pareto_spike_matrix(...)``: the
    contributions landing on one (row, hour) cell combine by max (an
    order-free, exact operation), and adding the overlay's untouched
    ``0.0`` cells to the strictly positive util values is the identity.
    Sorting the sparse contributions and segment-reducing them is much
    faster than ``np.maximum.at`` plus a dense full-matrix add.
    """
    starts = np.asarray(starts)
    durations = np.asarray(durations)
    if starts.size == 0:
        return
    cell_chunks: List[np.ndarray] = []
    value_chunks: List[np.ndarray] = []
    for offset in range(int(durations.max())):
        active = durations > offset
        times = starts + offset
        active &= times < n_hours
        if not active.any():
            continue
        # Same decay expression as models.pareto_spike_matrix.
        decay = 1.0 - offset / durations[active]
        cell_chunks.append(rows[active] * n_hours + times[active])
        value_chunks.append(magnitudes[active] * decay)
    if not cell_chunks:
        return
    cells = np.concatenate(cell_chunks)
    values = np.concatenate(value_chunks)
    order = np.argsort(cells, kind="stable")
    cells = cells[order]
    values = values[order]
    segment_starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(cells)) + 1)
    )
    combined = np.maximum.reduceat(values, segment_starts)
    unique_cells = cells[segment_starts]
    util[unique_cells // n_hours, unique_cells % n_hours] += combined


def _block_math(
    profile: WorkloadClassProfile,
    n_hours: int,
    draws: dict,
    *,
    events: Tuple[Tuple[int, int, float], ...],
    shared_log_factor: Optional[np.ndarray],
    mean_util_bounds: Tuple[float, float],
    configured_gb: float,
    cpu_out: np.ndarray,
    mem_out: np.ndarray,
    drawer: Optional[FastDrawKernel] = None,
    rpe2_out: Optional[np.ndarray] = None,
    rpe2_scale: float = 0.0,
) -> None:
    """The batched trace arithmetic for one block (CPU then memory).

    Every step is the scalar pipeline's operation applied matrix-wide,
    in the same per-element order, so rows are bit-identical to
    :func:`generate_server_trace`.  With a verified C kernel the
    recurrences and the purely elementwise pass sequences run fused —
    identical per-element rounding, fewer trips over the matrices.  The
    SIMD-sensitive ufuncs (``exp``, ``power``, pairwise ``mean``) stay
    in numpy either way: libm scalars round differently.
    """
    cpu = profile.cpu
    mem = profile.memory
    count = cpu_out.shape[0]
    mean_utils = np.clip(
        profile.mean_util * draws["spreads"], *mean_util_bounds
    )
    if not bool(np.all((mean_utils > 0) & (mean_utils <= 1.0))):
        raise ConfigurationError(
            f"{profile.name}: mean_util must be in (0, 1] after clipping "
            f"to bounds {mean_util_bounds}"
        )
    util = cpu_out
    ar1 = None
    if draws["gauss"] is not None:
        if drawer is not None and -1.0 < cpu.ar1_phi < 1.0 and cpu.ar1_sigma > 0:
            ar1 = drawer.ar1_filter(draws["gauss"], cpu.ar1_phi, cpu.ar1_sigma)
        else:
            ar1 = models.ar1_filter_matrix(
                draws["gauss"], cpu.ar1_phi, cpu.ar1_sigma
            )
        np.exp(ar1, out=ar1)
    shared_column = None
    if shared_log_factor is not None and profile.correlation_sensitivity > 0:
        shared_column = np.exp(
            profile.correlation_sensitivity * shared_log_factor
        )
    if drawer is not None:
        # The diurnal pattern is periodic: gather it and apply every
        # multiplicative texture in a single fused pass.
        pattern = models.diurnal_pattern_matrix(
            draws["peaks"],
            amplitude=cpu.diurnal_amplitude,
            width_hours=cpu.diurnal_width_hours,
            weekend_factor=cpu.weekend_factor,
        )
        drawer.texture_fill(
            util, pattern, 0, draws["ln_rows"], ar1, shared_column
        )
    else:
        models.diurnal_profile_matrix(
            n_hours,
            draws["peaks"],
            amplitude=cpu.diurnal_amplitude,
            width_hours=cpu.diurnal_width_hours,
            weekend_factor=cpu.weekend_factor,
            out=util,
        )
        if draws["ln_rows"] is not None:
            util *= draws["ln_rows"]
        if ar1 is not None:
            util *= ar1
        if shared_column is not None:
            util *= shared_column
    row_means = util.mean(axis=1)
    if drawer is not None:
        drawer.row_scale(util, mean_utils, row_means)
    else:
        util *= mean_utils[:, None]
        util /= row_means[:, None]
    if draws["sched"] is not None:
        starts, levels, jitters = draws["sched"]
        job = cpu.scheduled
        util += models.scheduled_job_matrix(
            n_hours,
            period_hours=job.period_hours,
            duration_hours=job.duration_hours,
            starts=starts,
            levels=levels,
            jitters=jitters,
        )
    if draws["spikes"] is not None:
        rows, starts, magnitudes, durations = draws["spikes"]
        _add_spikes_inplace(
            util,
            rows=rows,
            starts=starts,
            magnitudes=magnitudes,
            durations=durations,
            n_hours=n_hours,
        )
    if draws["event_rows"] is not None:
        _apply_event_hits(
            util, events, draws["event_rows"], draws["event_sevs"], n_hours
        )
    committed = mem_out
    if drawer is not None:
        drawer.clip_scale_div(
            util,
            rpe2_out,
            committed,
            clip_low=_UTIL_FLOOR,
            clip_high=1.0,
            scale=rpe2_scale,
            peak_floor=1e-9,
        )
    else:
        np.clip(util, _UTIL_FLOOR, 1.0, out=util)
        if rpe2_out is not None:
            np.multiply(util, rpe2_scale, out=rpe2_out)
        load_peak = util.max(axis=1)
        np.maximum(load_peak, 1e-9, out=load_peak)
        np.divide(util, load_peak[:, None], out=committed)
    np.power(committed, mem.load_exponent, out=committed)
    alpha = mem.smoothing_alpha
    if drawer is not None and 0 < alpha <= 1 and not approx_eq(alpha, 1.0):
        drawer.mem_finish(
            committed,
            draws["mem_rows"],
            alpha=alpha,
            dynamic_frac=mem.dynamic_frac,
            base_frac=mem.base_frac,
            configured_gb=configured_gb,
            clip_low=0.01 * configured_gb,
            clip_high=configured_gb,
        )
    else:
        driver = models.ewma_smooth_matrix(committed, alpha)
        np.multiply(driver, mem.dynamic_frac, out=committed)
        committed += mem.base_frac
        if draws["mem_rows"] is not None:
            committed *= draws["mem_rows"]
        committed *= configured_gb
        np.clip(committed, 0.01 * configured_gb, configured_gb, out=committed)


def _generate_block(
    profile: WorkloadClassProfile,
    hardware: ServerModel,
    n_hours: int,
    seed: int,
    start_index: int,
    count: int,
    *,
    spread_sigma: float,
    mean_util_bounds: Tuple[float, float],
    shared_log_factor: Optional[np.ndarray],
    events: Tuple[Tuple[int, int, float], ...],
    correlation: Optional[CorrelationModel],
    fast: Optional[FastSeeder],
    cpu_out: np.ndarray,
    mem_out: np.ndarray,
    drawer: Optional[FastDrawKernel] = None,
    rpe2_out: Optional[np.ndarray] = None,
    rpe2_scale: float = 0.0,
) -> None:
    """Draw and synthesize one block straight into the output matrices."""
    participation = 0.0
    if correlation is not None:
        participation = (
            correlation.event_participation * profile.correlation_sensitivity
        )
    draws = _draw_block(
        profile,
        n_hours,
        seed,
        start_index,
        count,
        spread_sigma=spread_sigma,
        events=events,
        participation=participation,
        fast=fast,
        drawer=drawer,
    )
    _block_math(
        profile,
        n_hours,
        draws,
        events=events,
        shared_log_factor=shared_log_factor,
        mean_util_bounds=mean_util_bounds,
        configured_gb=hardware.memory_gb,
        cpu_out=cpu_out,
        mem_out=mem_out,
        drawer=drawer,
        rpe2_out=rpe2_out,
        rpe2_scale=rpe2_scale,
    )


def _validate_generation_args(n_hours: int, spread_sigma: float) -> None:
    if n_hours <= 0:
        raise ConfigurationError(f"n_hours must be > 0, got {n_hours}")
    if spread_sigma < 0:
        raise ConfigurationError("mean_util_spread_sigma must be >= 0")


def _draws_equal(reference: dict, candidate: dict) -> bool:
    def equal(x: object, y: object) -> bool:
        if x is None or y is None:
            return (x is None) == (y is None)
        if isinstance(x, (tuple, list)) or isinstance(y, (tuple, list)):
            return len(x) == len(y) and all(
                equal(a, b) for a, b in zip(x, y)
            )
        return bool(np.array_equal(np.asarray(x), np.asarray(y)))

    return all(equal(reference[key], candidate[key]) for key in reference)


_DRAWER_CHECKED: Optional[bool] = None


def _checked_drawer(fast: Optional[FastSeeder]) -> Optional[FastDrawKernel]:
    """The C draw kernel, after a one-time full-block cross-check.

    ``make_fast_drawer`` already proves the distribution calls; this
    additionally runs two small feature-complete blocks (spikes +
    events, scheduled jobs + jitter) through both the compiled loop and
    the pure-python loop and compares every output bit.  Any mismatch
    disables the kernel for the process — generation then runs on the
    python draw loop, which is bit-identical to the scalar reference by
    construction.
    """
    global _DRAWER_CHECKED
    if fast is None or _DRAWER_CHECKED is False:
        return None
    drawer = make_fast_drawer(fast)
    if drawer is None:
        return None
    if _DRAWER_CHECKED:
        return drawer
    events = ((2, 3, 1.5), (10, 2, 2.0), (25, 4, 1.1))
    cases = (
        (WEB_BURSTY, events, 0.45),
        (SCHEDULED_BATCH, events, 0.3),
    )
    try:
        for profile, case_events, participation in cases:
            keywords = dict(
                spread_sigma=0.6,
                events=case_events,
                participation=participation,
                fast=fast,
            )
            reference = _draw_block(profile, 40, 97, 3, 6, **keywords)
            candidate = _draw_block(
                profile, 40, 97, 3, 6, drawer=drawer, **keywords
            )
            if not _draws_equal(reference, candidate):
                _DRAWER_CHECKED = False  # repro-lint: disable=REPRO111
                return None
    except Exception:  # pragma: no cover - depends on toolchain
        _DRAWER_CHECKED = False  # repro-lint: disable=REPRO111
        return None
    # Capability memo, not result state: with the kernel or without it
    # the engine is bit-identical, so cached task outputs are unaffected.
    _DRAWER_CHECKED = True  # repro-lint: disable=REPRO111
    return drawer


def generate_trace_blocks(
    name: str,
    specs: Sequence[Tuple[WorkloadClassProfile, ServerModel, int]],
    n_hours: int,
    seed: int,
    *,
    mean_util_spread_sigma: float = 0.7,
    mean_util_bounds: Tuple[float, float] = (0.002, 0.6),
    correlation: Optional[CorrelationModel] = None,
    vm_range: Optional[Tuple[int, int]] = None,
    block_rows: Optional[int] = None,
) -> Iterator[TraceBlock]:
    """Stream the fleet as :class:`TraceBlock` row blocks (array engine).

    This is the streaming face of the batched engine: blocks arrive in
    global row order and are bit-identical to the matching rows of
    :func:`generate_trace_set`, whatever ``block_rows`` or ``vm_range``
    say — per-VM streams are keyed by global fleet index, and the shared
    correlation draws are made once up front.  Shard workers pass their
    ``vm_range`` to generate only their rows; the chunked writer passes
    ``block_rows`` to bound peak memory.
    """
    _validate_generation_args(n_hours, mean_util_spread_sigma)
    plan, _total = _plan_blocks(
        specs, vm_range=vm_range, block_rows=block_rows
    )
    shared_log_factor, events = _shared_factors(correlation, n_hours, seed)
    fast = make_fast_seeder()
    drawer = _checked_drawer(fast)
    for profile, hardware, start, count in plan:
        cpu_util = np.empty((count, n_hours))
        memory_gb = np.empty((count, n_hours))
        _generate_block(
            profile,
            hardware,
            n_hours,
            seed,
            start,
            count,
            spread_sigma=mean_util_spread_sigma,
            mean_util_bounds=mean_util_bounds,
            shared_log_factor=shared_log_factor,
            events=events,
            correlation=correlation,
            fast=fast,
            drawer=drawer,
            cpu_out=cpu_util,
            mem_out=memory_gb,
        )
        yield TraceBlock(
            profile=profile,
            source_model=hardware,
            start_index=start,
            vm_ids=tuple(
                f"{name}-vm{index:04d}" for index in range(start, start + count)
            ),
            cpu_util=cpu_util,
            memory_gb=memory_gb,
        )


def generate_trace_matrix(
    name: str,
    specs: Sequence[Tuple[WorkloadClassProfile, ServerModel, int]],
    n_hours: int,
    seed: int,
    *,
    mean_util_spread_sigma: float = 0.7,
    mean_util_bounds: Tuple[float, float] = (0.002, 0.6),
    correlation: Optional[CorrelationModel] = None,
    vm_range: Optional[Tuple[int, int]] = None,
) -> Tuple[TraceStore, Tuple[TraceBlock, ...]]:
    """Generate the fleet directly into a columnar :class:`TraceStore`.

    The store's matrices are allocated once and every block's arithmetic
    writes into its row slice — no per-trace objects, no restacking.
    The returned blocks are zero-copy row views of the store matrices,
    carrying the profile/hardware metadata needed to build VM objects
    lazily.
    """
    _validate_generation_args(n_hours, mean_util_spread_sigma)
    plan, _total = _plan_blocks(specs, vm_range=vm_range)
    n_rows = sum(count for *_group, count in plan)
    cpu_util = np.empty((n_rows, n_hours))
    cpu_rpe2 = np.empty((n_rows, n_hours))
    memory_gb = np.empty((n_rows, n_hours))
    shared_log_factor, events = _shared_factors(correlation, n_hours, seed)
    fast = make_fast_seeder()
    drawer = _checked_drawer(fast)
    blocks: List[TraceBlock] = []
    vm_ids: List[str] = []
    cursor = 0
    for profile, hardware, start, count in plan:
        row_slice = slice(cursor, cursor + count)
        cursor += count
        _generate_block(
            profile,
            hardware,
            n_hours,
            seed,
            start,
            count,
            spread_sigma=mean_util_spread_sigma,
            mean_util_bounds=mean_util_bounds,
            shared_log_factor=shared_log_factor,
            events=events,
            correlation=correlation,
            fast=fast,
            drawer=drawer,
            cpu_out=cpu_util[row_slice],
            mem_out=memory_gb[row_slice],
            # Same broadcast multiply as ``TraceStore.from_traces``,
            # fused into the final clip pass.
            rpe2_out=cpu_rpe2[row_slice],
            rpe2_scale=ServerSpec.from_model(hardware).cpu_rpe2,
        )
        block_ids = tuple(
            f"{name}-vm{index:04d}" for index in range(start, start + count)
        )
        vm_ids.extend(block_ids)
        blocks.append(
            TraceBlock(
                profile=profile,
                source_model=hardware,
                start_index=start,
                vm_ids=block_ids,
                cpu_util=cpu_util[row_slice],
                memory_gb=memory_gb[row_slice],
            )
        )
    for matrix in (cpu_util, cpu_rpe2, memory_gb):
        matrix.flags.writeable = False
    store = TraceStore(
        vm_ids=tuple(vm_ids),
        cpu_util=cpu_util,
        cpu_rpe2=cpu_rpe2,
        memory_gb=memory_gb,
        interval_hours=1.0,
    )
    return store, tuple(blocks)


def generate_trace_set(
    name: str,
    specs: Sequence[Tuple[WorkloadClassProfile, ServerModel, int]],
    n_hours: int,
    seed: int,
    *,
    mean_util_spread_sigma: float = 0.7,
    mean_util_bounds: Tuple[float, float] = (0.002, 0.6),
    correlation: Optional[CorrelationModel] = None,
    engine: str = "array",
    vm_range: Optional[Tuple[int, int]] = None,
) -> TraceSet:
    """Generate a trace set from ``(profile, hardware, count)`` groups.

    Per-server mean utilizations are drawn lognormally around each
    profile's target mean (``mean_util_spread_sigma`` in log space) to
    reproduce the wide cross-server utilization spread of real
    datacenters, then clipped to ``mean_util_bounds``.

    When a :class:`CorrelationModel` is given, all servers share one
    AR(1) business factor and one flash-event calendar, each scaled by
    the server's class ``correlation_sensitivity``.

    ``engine`` selects the implementation: ``"array"`` (default) runs
    the batched store-first engine and returns a lazily materialized
    set backed by the columnar store; ``"scalar"`` runs the pinned
    per-VM reference pipeline.  Both are bit-identical.

    ``vm_range`` (array engine only) restricts generation to global
    fleet rows ``[start, stop)`` — the rows are bit-identical to the
    same rows of the full fleet, which is how shard workers generate
    their slice on demand.
    """
    if engine == "scalar":
        if vm_range is not None:
            raise ConfigurationError(
                "vm_range requires the array engine"
            )
        return _generate_trace_set_scalar(
            name,
            specs,
            n_hours,
            seed,
            mean_util_spread_sigma=mean_util_spread_sigma,
            mean_util_bounds=mean_util_bounds,
            correlation=correlation,
        )
    if engine != "array":
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected 'array' or 'scalar'"
        )
    _validate_generation_args(n_hours, mean_util_spread_sigma)
    total = 0
    for profile, _hardware, count in specs:
        if count < 0:
            raise ConfigurationError(
                f"{profile.name}: count must be >= 0, got {count}"
            )
        total += count
    if total == 0:
        return TraceSet(name=name)
    store, blocks = generate_trace_matrix(
        name,
        specs,
        n_hours,
        seed,
        mean_util_spread_sigma=mean_util_spread_sigma,
        mean_util_bounds=mean_util_bounds,
        correlation=correlation,
        vm_range=vm_range,
    )

    def vm_specs() -> List[Tuple[VirtualMachine, ServerSpec]]:
        pairs: List[Tuple[VirtualMachine, ServerSpec]] = []
        for block in blocks:
            spec = block.source_spec
            pairs.extend((vm, spec) for vm in block.virtual_machines())
        return pairs

    return TraceSet.from_store(name, store, vm_specs)


def _generate_trace_set_scalar(
    name: str,
    specs: Sequence[Tuple[WorkloadClassProfile, ServerModel, int]],
    n_hours: int,
    seed: int,
    *,
    mean_util_spread_sigma: float = 0.7,
    mean_util_bounds: Tuple[float, float] = (0.002, 0.6),
    correlation: Optional[CorrelationModel] = None,
) -> TraceSet:
    """The pinned per-VM reference pipeline (``engine="scalar"``).

    Kept scalar on purpose: this is what the array engine's bitwise
    equivalence suite diffs against, like the reference emulator.  One
    upfront ``spawn(total + 1)`` replaces the historical per-VM
    ``spawn(1)`` calls — SeedSequence children are a function of the
    spawn index alone, so the streams are unchanged while the O(n)
    bookkeeping goes away.
    """
    _validate_generation_args(n_hours, mean_util_spread_sigma)
    total = 0
    for profile, _hardware, count in specs:
        if count < 0:
            raise ConfigurationError(
                f"{profile.name}: count must be >= 0, got {count}"
            )
        total += count
    children = np.random.SeedSequence(seed).spawn(total + 1)
    shared_rng = np.random.default_rng(children[0])
    shared_log_factor = None
    events: Sequence[Tuple[int, int, float]] = ()
    if correlation is not None:
        shared_log_factor = correlation.draw_shared_log_factor(
            n_hours, shared_rng
        )
        events = correlation.draw_events(n_hours, shared_rng)
    trace_set = TraceSet(name=name)
    server_index = 0
    for profile, hardware, count in specs:
        for _ in range(count):  # repro-lint: disable=REPRO109
            rng = np.random.default_rng(children[server_index + 1])
            spread = float(
                rng.lognormal(
                    mean=-0.5 * mean_util_spread_sigma**2,
                    sigma=mean_util_spread_sigma,
                )
            )
            mean_util = float(
                np.clip(profile.mean_util * spread, *mean_util_bounds)
            )
            event_multiplier = None
            if correlation is not None:
                event_multiplier = _event_multiplier(
                    events,
                    n_hours,
                    correlation.event_participation
                    * profile.correlation_sensitivity,
                    rng,
                )
            trace_set.add(
                generate_server_trace(
                    vm_id=f"{name}-vm{server_index:04d}",
                    profile=profile,
                    source_model=hardware,
                    n_hours=n_hours,
                    rng=rng,
                    mean_util=mean_util,
                    shared_log_factor=shared_log_factor,
                    event_multiplier=event_multiplier,
                )
            )
            server_index += 1
    return trace_set
