"""Columnar (structure-of-arrays) backing store for trace sets.

:class:`TraceStore` holds one datacenter's demand as immutable
``(n_servers, n_points)`` matrices — CPU utilization fractions, absolute
CPU demand in RPE2, and memory demand in GB — built once from a list of
:class:`~repro.workloads.trace.ServerTrace` objects and shared by every
consumer that needs bulk per-timestep math (the emulator's scatter-add
replay, aggregate demand queries, trace analysis).

The row-major ``float64`` layout is the contract: row ``i`` is VM
``vm_ids[i]``, and every matrix is marked read-only so views handed out
by :meth:`window` are safe to share without copies.  Column windows are
zero-copy NumPy views; row subsets (:meth:`take`) are single bulk fancy
-index gathers.  All derived matrices are computed with the same
elementwise operations as the per-trace scalar path, so results are
bit-identical to iterating traces one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence, Tuple

import numpy as np

from repro.exceptions import TraceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.trace import ServerTrace

__all__ = ["TraceStore"]


def _frozen(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@dataclass(frozen=True)
class TraceStore:
    """Immutable columnar view of one trace set.

    Attributes
    ----------
    vm_ids:
        Row labels: ``vm_ids[i]`` owns row ``i`` of every matrix.
    cpu_util:
        ``(n, T)`` CPU utilization fractions of the source servers.
    cpu_rpe2:
        ``(n, T)`` absolute CPU demand (utilization × source capacity).
    memory_gb:
        ``(n, T)`` memory demand in GB.
    interval_hours:
        Sampling interval shared by every row.
    """

    vm_ids: Tuple[str, ...]
    cpu_util: np.ndarray
    cpu_rpe2: np.ndarray
    memory_gb: np.ndarray
    interval_hours: float
    _row_of: Mapping[str, int] = field(repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        n = len(self.vm_ids)
        for name in ("cpu_util", "cpu_rpe2", "memory_gb"):
            matrix = getattr(self, name)
            if matrix.ndim != 2 or matrix.shape[0] != n:
                raise TraceError(
                    f"TraceStore.{name}: expected ({n}, T) matrix, got "
                    f"shape {matrix.shape}"
                )
            if matrix.shape[1] != self.cpu_util.shape[1]:
                raise TraceError(f"TraceStore.{name}: column count mismatch")
        object.__setattr__(
            self, "_row_of", {vm_id: i for i, vm_id in enumerate(self.vm_ids)}
        )

    @classmethod
    def from_traces(cls, traces: Sequence["ServerTrace"]) -> "TraceStore":
        """Build the columnar matrices from row-per-trace objects.

        One bulk fill per metric; the absolute-CPU matrix is derived by
        broadcasting each row's source capacity, which performs exactly
        the same float multiplications as ``ServerTrace.cpu_rpe2``.
        """
        if not traces:
            raise TraceError("cannot build a TraceStore from zero traces")
        n = len(traces)
        n_points = len(traces[0])
        cpu_util = np.empty((n, n_points), dtype=float)
        cpu_rpe2 = np.empty((n, n_points), dtype=float)
        memory_gb = np.empty((n, n_points), dtype=float)
        capacity = np.empty((n, 1), dtype=float)
        # One C-level gather per metric (np.stack writes straight into
        # the preallocated matrix), then one broadcast multiply into the
        # rpe2 matrix — no per-trace temporaries anywhere.  Elementwise
        # broadcasting performs exactly the same float multiplications
        # as ``ServerTrace.cpu_rpe2`` row by row.
        np.stack([t.cpu_util.values for t in traces], out=cpu_util)
        np.stack([t.memory_gb.values for t in traces], out=memory_gb)
        capacity[:, 0] = [t.source_spec.cpu_rpe2 for t in traces]
        np.multiply(cpu_util, capacity, out=cpu_rpe2)
        return cls(
            vm_ids=tuple(t.vm_id for t in traces),
            cpu_util=_frozen(cpu_util),
            cpu_rpe2=_frozen(cpu_rpe2),
            memory_gb=_frozen(memory_gb),
            interval_hours=traces[0].interval_hours,
        )

    @property
    def n_servers(self) -> int:
        return len(self.vm_ids)

    @property
    def n_points(self) -> int:
        return int(self.cpu_util.shape[1])

    def row_of(self, vm_id: str) -> int:
        """Matrix row of one VM; raises :class:`TraceError` if unknown."""
        try:
            return self._row_of[vm_id]
        except KeyError:
            raise TraceError(f"unknown vm_id {vm_id!r} in TraceStore") from None

    def window(self, start_index: int, end_index: int) -> "TraceStore":
        """Zero-copy column slice covering ``[start_index, end_index)``.

        The returned store shares memory with this one: slices of
        read-only matrices are read-only views, so no demand data is
        duplicated however many history/evaluation windows are cut.
        """
        if not 0 <= start_index < end_index <= self.n_points:
            raise TraceError(
                f"window [{start_index}, {end_index}) out of range for "
                f"{self.n_points} points"
            )
        return TraceStore(
            vm_ids=self.vm_ids,
            cpu_util=self.cpu_util[:, start_index:end_index],
            cpu_rpe2=self.cpu_rpe2[:, start_index:end_index],
            memory_gb=self.memory_gb[:, start_index:end_index],
            interval_hours=self.interval_hours,
        )

    def rows(self, start: int, stop: int) -> "TraceStore":
        """Zero-copy contiguous row slice covering ``[start, stop)``.

        Unlike :meth:`take` (a bulk fancy-index gather that materializes
        the subset), a contiguous basic slice shares memory with this
        store — including memory-mapped backing files, where the sliced
        rows stay on disk until touched.  This is how shard workers view
        only their rows of a fleet-wide store.
        """
        if not 0 <= start < stop <= self.n_servers:
            raise TraceError(
                f"rows [{start}, {stop}) out of range for "
                f"{self.n_servers} servers"
            )
        return TraceStore(
            vm_ids=self.vm_ids[start:stop],
            cpu_util=self.cpu_util[start:stop],
            cpu_rpe2=self.cpu_rpe2[start:stop],
            memory_gb=self.memory_gb[start:stop],
            interval_hours=self.interval_hours,
        )

    def take(self, vm_ids: Sequence[str]) -> "TraceStore":
        """Row subset in the given order (one bulk gather per matrix)."""
        rows = np.array([self.row_of(v) for v in vm_ids], dtype=np.intp)
        return TraceStore(
            vm_ids=tuple(vm_ids),
            cpu_util=_frozen(self.cpu_util[rows]),
            cpu_rpe2=_frozen(self.cpu_rpe2[rows]),
            memory_gb=_frozen(self.memory_gb[rows]),
            interval_hours=self.interval_hours,
        )
