"""The four datacenter workloads of the paper (Table 2), as presets.

| Name | Industry          | Servers | Mean CPU util | Character |
|------|-------------------|---------|---------------|-----------|
| A    | Banking           | 816     | 5%            | most web, most bursty, most CPU-intensive |
| B    | Airlines          | 445     | 1%            | near-idle, most memory-intensive |
| C    | Natural Resources | 1390    | 12%           | most batch, least bursty |
| D    | Beverage          | 722     | 6%            | bursty like Banking, memory-dominated |

Each preset is a mixture of workload-class profiles over source hardware
models, with per-class mean utilizations and memory models tuned so the
generated traces reproduce the paper's Section-4 measurements: the CPU /
memory peak-to-average and CoV CDFs (Figs. 2-5) and the aggregate
CPU:memory resource-ratio CDFs against the HS23 anchor of 160 RPE2/GB
(Fig. 6).  The calibration bands themselves live in
:mod:`repro.experiments.paper_targets` and are enforced by tests.

Presets are **scalable**: ``generate_datacenter("banking", scale=0.25)``
produces a quarter-size datacenter with the same statistics, which keeps
tests and benchmarks fast while full-scale runs stay available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.metrics.catalog import ServerModel, get_model, register_model
from repro.workloads.chunked import generate_chunked_store
from repro.workloads.generator import (
    IDLE,
    SCHEDULED_BATCH,
    STEADY_BATCH,
    WEB_BURSTY,
    WEB_MODERATE,
    CorrelationModel,
    MemoryModel,
    WorkloadClassProfile,
    generate_trace_set,
)
from repro.workloads.trace import HOURS_PER_DAY, TraceSet

__all__ = [
    "ClassGroup",
    "DatacenterConfig",
    "BANKING",
    "AIRLINES",
    "NATURAL_RESOURCES",
    "BEVERAGE",
    "ALL_DATACENTERS",
    "get_datacenter_config",
    "datacenter_specs",
    "generate_datacenter",
    "generate_datacenter_chunked",
    "STUDY_DAYS",
]

#: The paper analyses "hourly averages of the monitored data for the most
#: recent 30 days" (Section 3.1).
STUDY_DAYS = 30

#: Legacy compute-heavy tower (2006-era): high RPE2-per-GB ratio; common
#: in the Banking estate, which skews CPU-intensive in Fig. 6.
_COMPUTE_TOWER = ServerModel(
    name="tower-compute",
    cpu_rpe2=2250.0,
    memory_gb=3.0,
    idle_watts=120.0,
    peak_watts=250.0,
    description="legacy compute tower, 3 GB (750 RPE2/GB)",
)

#: Memory-rich database box: low RPE2-per-GB; common in the Airlines
#: estate, which is memory-bound for the entire study (Fig. 6b).
_DB_SERVER = ServerModel(
    name="rack-2u-db",
    cpu_rpe2=4000.0,
    memory_gb=32.0,
    idle_watts=190.0,
    peak_watts=400.0,
    description="2U database server, 32 GB (125 RPE2/GB)",
)

for _model in (_COMPUTE_TOWER, _DB_SERVER):
    try:
        register_model(_model)
    except ConfigurationError:
        pass  # already registered on module re-import


@dataclass(frozen=True)
class ClassGroup:
    """One slice of a datacenter: a workload class on a hardware model."""

    profile: WorkloadClassProfile
    hardware: str
    weight: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ConfigurationError(f"weight must be >= 0, got {self.weight}")
        get_model(self.hardware)  # validate eagerly


@dataclass(frozen=True)
class DatacenterConfig:
    """A reproducible datacenter preset."""

    key: str
    label: str
    industry: str
    server_count: int
    mean_cpu_util: float
    groups: Tuple[ClassGroup, ...]
    seed: int
    #: Cross-server correlation structure (shared business factor and
    #: flash-event calendar); None disables correlation entirely.
    correlation: Optional[CorrelationModel] = None

    def __post_init__(self) -> None:
        if self.server_count <= 0:
            raise ConfigurationError(
                f"{self.key}: server_count must be > 0, got {self.server_count}"
            )
        if not self.groups:
            raise ConfigurationError(f"{self.key}: needs at least one group")
        total = sum(g.weight for g in self.groups)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ConfigurationError(
                f"{self.key}: group weights must sum to 1, got {total}"
            )

    @property
    def web_fraction(self) -> float:
        """Fraction of servers labelled web (paper ordering: A > D > B > C)."""
        from repro.infrastructure.vm import WorkloadClass

        return sum(
            g.weight
            for g in self.groups
            if WorkloadClass.top_level(g.profile.workload_class)
            == WorkloadClass.WEB
        )


def _mem(profile: WorkloadClassProfile, **kwargs) -> WorkloadClassProfile:
    """Copy of a class profile with memory-model fields overridden."""
    return replace(profile, memory=replace(profile.memory, **kwargs))


#: Memory model for the minority of servers whose committed memory tracks
#: their bursty CPU almost one-to-one (in-memory caches, session stores).
#: These are the heavy-tailed-memory servers of Fig. 5a: ~20% of Banking,
#: <10% of Beverage, none in Airlines / Natural Resources.
_BURSTY_MEMORY = MemoryModel(
    base_frac=0.10,
    dynamic_frac=0.25,
    load_exponent=1.0,
    smoothing_alpha=0.9,
    noise_sigma=1.1,
)


BANKING = DatacenterConfig(
    key="banking",
    label="A",
    industry="Banking",
    server_count=816,
    mean_cpu_util=0.05,
    seed=11,
    # Market-driven flash events hit the whole customer-facing estate at
    # once: the mechanism behind Banking's dynamic-consolidation
    # contention (Figs. 8/9).
    correlation=CorrelationModel(
        ar1_sigma=0.18,
        event_rate_per_day=0.6,
        event_participation=0.40,
        event_magnitude_scale=1.8,
    ),
    groups=(
        # Heavy-tailed customer-facing web tier on compute-skewed hardware:
        # low committed memory keeps the aggregate ratio above the HS23
        # anchor for ~70% of intervals (Fig. 6a).
        ClassGroup(
            _mem(
                WEB_BURSTY.with_mean_util(0.055),
                base_frac=0.11,
                dynamic_frac=0.14,
            ),
            "tower-compute",
            0.38,
        ),
        ClassGroup(
            _mem(
                WEB_BURSTY.with_mean_util(0.06),
                base_frac=0.14,
                dynamic_frac=0.16,
            ),
            "rack-1u-small",
            0.15,
        ),
        ClassGroup(
            replace(WEB_BURSTY.with_mean_util(0.06), memory=_BURSTY_MEMORY),
            "rack-1u-small",
            0.22,
        ),
        ClassGroup(
            _mem(
                WEB_MODERATE.with_mean_util(0.04),
                base_frac=0.15,
                dynamic_frac=0.12,
            ),
            "rack-1u-small",
            0.10,
        ),
        ClassGroup(
            _mem(
                SCHEDULED_BATCH.with_mean_util(0.04),
                base_frac=0.15,
                dynamic_frac=0.12,
            ),
            "rack-1u-medium",
            0.15,
        ),
    ),
)

AIRLINES = DatacenterConfig(
    key="airlines",
    label="B",
    industry="Airlines",
    server_count=445,
    mean_cpu_util=0.01,
    seed=23,
    correlation=CorrelationModel(
        ar1_sigma=0.10,
        event_rate_per_day=0.15,
        event_participation=0.25,
        event_magnitude_scale=0.8,
    ),
    groups=(
        # Mostly near-idle reservation/back-office boxes with high memory
        # commitment: CPU:memory ratio stays below ~50 RPE2/GB throughout
        # (Fig. 6b), with no heavy-tailed memory servers (Fig. 5b).
        ClassGroup(
            _mem(
                IDLE.with_mean_util(0.007),
                base_frac=0.30,
                dynamic_frac=0.16,
                smoothing_alpha=0.15,
            ),
            "rack-1u-medium",
            0.40,
        ),
        ClassGroup(
            _mem(
                IDLE.with_mean_util(0.008),
                base_frac=0.34,
                dynamic_frac=0.18,
                smoothing_alpha=0.15,
            ),
            "rack-2u-db",
            0.25,
        ),
        ClassGroup(
            _mem(
                WEB_MODERATE.with_mean_util(0.014),
                base_frac=0.24,
                dynamic_frac=0.34,
                smoothing_alpha=0.3,
            ),
            "rack-1u-medium",
            0.30,
        ),
        ClassGroup(
            _mem(
                SCHEDULED_BATCH.with_mean_util(0.012),
                base_frac=0.24,
                dynamic_frac=0.34,
            ),
            "rack-1u-medium",
            0.05,
        ),
    ),
)

NATURAL_RESOURCES = DatacenterConfig(
    key="natural-resources",
    label="C",
    industry="Natural Resources",
    server_count=1390,
    mean_cpu_util=0.12,
    seed=37,
    correlation=CorrelationModel(
        ar1_sigma=0.08,
        event_rate_per_day=0.1,
        event_participation=0.20,
        event_magnitude_scale=0.6,
    ),
    groups=(
        # Custom mining/minerals compute: sustained load, lowest
        # burstiness of the four (Figs. 2c/3c), memory-constrained for
        # >90% of intervals (Fig. 6c).
        ClassGroup(
            _mem(
                STEADY_BATCH.with_mean_util(0.13),
                base_frac=0.56,
                dynamic_frac=0.32,
            ),
            "rack-1u-medium",
            0.45,
        ),
        ClassGroup(
            _mem(
                STEADY_BATCH.with_mean_util(0.14),
                base_frac=0.58,
                dynamic_frac=0.32,
            ),
            "rack-2u-large",
            0.20,
        ),
        ClassGroup(
            _mem(
                SCHEDULED_BATCH.with_mean_util(0.09),
                base_frac=0.26,
                dynamic_frac=0.68,
                smoothing_alpha=0.5,
            ),
            "rack-1u-medium",
            0.15,
        ),
        ClassGroup(
            _mem(
                WEB_MODERATE.with_mean_util(0.10),
                base_frac=0.26,
                dynamic_frac=0.68,
                smoothing_alpha=0.5,
            ),
            "rack-1u-medium",
            0.10,
        ),
        ClassGroup(
            _mem(
                WEB_BURSTY.with_mean_util(0.10),
                base_frac=0.26,
                dynamic_frac=0.68,
                smoothing_alpha=0.5,
            ),
            "rack-1u-medium",
            0.10,
        ),
    ),
)

BEVERAGE = DatacenterConfig(
    key="beverage",
    label="D",
    industry="Beverage",
    server_count=722,
    mean_cpu_util=0.06,
    seed=53,
    correlation=CorrelationModel(
        ar1_sigma=0.15,
        event_rate_per_day=0.45,
        event_participation=0.35,
        event_magnitude_scale=1.5,
    ),
    groups=(
        # Bursty like Banking (Figs. 2d/3d) but on more memory-committed
        # hardware, so >90% of intervals are memory-dominated (Fig. 6d)
        # while still having more CPU-intensive intervals than B or C.
        ClassGroup(
            _mem(
                WEB_BURSTY.with_mean_util(0.065),
                base_frac=0.25,
                dynamic_frac=0.22,
            ),
            "rack-1u-small",
            0.35,
        ),
        ClassGroup(
            replace(WEB_BURSTY.with_mean_util(0.06), memory=_BURSTY_MEMORY),
            "rack-1u-small",
            0.08,
        ),
        ClassGroup(
            _mem(
                WEB_BURSTY.with_mean_util(0.06),
                base_frac=0.23,
                dynamic_frac=0.20,
            ),
            "tower-compute",
            0.17,
        ),
        ClassGroup(
            _mem(
                WEB_MODERATE.with_mean_util(0.05),
                base_frac=0.27,
                dynamic_frac=0.16,
            ),
            "rack-1u-medium",
            0.15,
        ),
        ClassGroup(
            _mem(
                SCHEDULED_BATCH.with_mean_util(0.05),
                base_frac=0.27,
                dynamic_frac=0.16,
            ),
            "rack-1u-medium",
            0.25,
        ),
    ),
)

ALL_DATACENTERS: Tuple[DatacenterConfig, ...] = (
    BANKING,
    AIRLINES,
    NATURAL_RESOURCES,
    BEVERAGE,
)

_BY_KEY: Dict[str, DatacenterConfig] = {c.key: c for c in ALL_DATACENTERS}
_ALIASES = {
    "a": "banking",
    "b": "airlines",
    "c": "natural-resources",
    "d": "beverage",
    "natres": "natural-resources",
    "natural_resources": "natural-resources",
}


def get_datacenter_config(key: str) -> DatacenterConfig:
    """Look up a preset by key ('banking', ...) or label alias ('a', ...)."""
    normalized = key.strip().lower()
    normalized = _ALIASES.get(normalized, normalized)
    try:
        return _BY_KEY[normalized]
    except KeyError:
        known = ", ".join(sorted(_BY_KEY))
        raise ConfigurationError(
            f"unknown datacenter {key!r}; known: {known}"
        ) from None


def _group_counts(config: DatacenterConfig, total: int) -> Sequence[int]:
    """Split ``total`` servers across groups proportionally to weight.

    Largest-remainder apportionment: counts sum exactly to ``total`` and
    every positive-weight group gets at least one server when possible.
    """
    raw = [g.weight * total for g in config.groups]
    counts = [int(x) for x in raw]
    remainders = sorted(
        range(len(raw)), key=lambda i: raw[i] - counts[i], reverse=True
    )
    shortfall = total - sum(counts)
    for i in remainders[:shortfall]:
        counts[i] += 1
    return counts


def datacenter_specs(
    key: str, *, scale: float = 1.0
) -> List[Tuple[WorkloadClassProfile, ServerModel, int]]:
    """The ``(profile, hardware, count)`` groups for a preset at scale.

    This is the preset's full generation plan — what
    :func:`generate_datacenter` feeds the engine — exposed so callers
    that stream (chunked writers, shard workers with a ``vm_range``)
    can hand the exact same plan to the blockwise entry points.
    """
    config = get_datacenter_config(key)
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    total = max(len(config.groups), int(round(config.server_count * scale)))
    counts = _group_counts(config, total)
    return [
        (group.profile, get_model(group.hardware), count)
        for group, count in zip(config.groups, counts)
    ]


def generate_datacenter(
    key: str,
    *,
    scale: float = 1.0,
    days: int = STUDY_DAYS,
    seed: Optional[int] = None,
    engine: str = "array",
    vm_range: Optional[Tuple[int, int]] = None,
) -> TraceSet:
    """Generate the trace set for one of the paper's datacenters.

    Parameters
    ----------
    key:
        Preset key or alias (``"banking"`` / ``"a"`` ...).
    scale:
        Server-count scale factor; 1.0 reproduces the paper's sizes
        (816/445/1390/722).  Scaled-down sets keep the same per-server
        statistics, so analysis CDFs are stable down to ~0.1.
    days:
        Trace length in days (paper: 30).
    seed:
        Override the preset's seed for alternative trace realizations.
    engine:
        ``"array"`` (default, batched store-first) or ``"scalar"``
        (pinned per-VM reference); bit-identical outputs.
    vm_range:
        Array engine only: generate just global rows ``[start, stop)``,
        bit-identical to the same rows of the full fleet.
    """
    config = get_datacenter_config(key)
    if days <= 0:
        raise ConfigurationError(f"days must be > 0, got {days}")
    return generate_trace_set(
        name=config.key,
        specs=datacenter_specs(key, scale=scale),
        n_hours=days * HOURS_PER_DAY,
        seed=config.seed if seed is None else seed,
        correlation=config.correlation,
        engine=engine,
        vm_range=vm_range,
    )


def generate_datacenter_chunked(
    key: str,
    directory: Union[str, Path],
    *,
    scale: float = 1.0,
    days: int = STUDY_DAYS,
    seed: Optional[int] = None,
    block_rows: int = 2048,
) -> Path:
    """Generate a preset straight to a chunked store directory.

    Streams row blocks from the array engine into
    :class:`~repro.workloads.chunked.ChunkedTraceWriter`, so arbitrarily
    scaled fleets (``scale=100`` is ~80k servers for banking) never
    materialize in RAM.  The on-disk store is bit-identical to
    ``generate_datacenter(key, ...).store``.
    """
    config = get_datacenter_config(key)
    if days <= 0:
        raise ConfigurationError(f"days must be > 0, got {days}")
    return generate_chunked_store(
        directory,
        config.key,
        datacenter_specs(key, scale=scale),
        days * HOURS_PER_DAY,
        config.seed if seed is None else seed,
        correlation=config.correlation,
        block_rows=block_rows,
    )
