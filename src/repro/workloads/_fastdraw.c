/* Batched per-VM draw kernel for the array generation engine.
 *
 * Compiled on demand by fastdraw.py against numpy's own static
 * distribution library (libnpyrandom.a) and its published
 * numpy/random/distributions.h API.  Every draw below calls the exact
 * C function that numpy's Generator dispatches to, against the same
 * PCG64 state struct, so the stream of variates is bit-identical to
 * the per-VM Generator calls in the reference path — the only thing
 * removed is the python call overhead between draws.
 *
 * Contract notes (mirrors generator._draw_block / the scalar pipeline):
 *   - Per VM, the caller-provided 128-bit (state, inc) pair is written
 *     straight into the bit generator and the uint32 buffer flags are
 *     cleared, exactly like FastSeeder.install.
 *   - The conditional draw order is the scalar pipeline's contract:
 *     spread, flash-event participation, peak hour, lognormal texture,
 *     AR(1) gaussians, scheduled-job draws, spike draws, memory noise.
 *   - Generator.uniform(low, high) is low + (high - low) * u with the
 *     span computed once in double precision; the caller passes that
 *     span so the arithmetic matches to the last bit.
 *   - Bounded integers use use_masked=false (Lemire rejection), which
 *     is Generator.integers' path; RandomState's masked path would
 *     consume a different stream.
 *
 * Keep this file free of floating-point re-association: it must be
 * compiled with -ffp-contract=off so no fused multiply-adds change
 * results versus numpy's own elementwise arithmetic.
 */

#include <stdbool.h>
#include <stddef.h>
#include <stdint.h>

#include <numpy/random/distributions.h>

/* Scalar draw parameters for one profile block.  Field order matters:
 * fastdraw.py mirrors this struct with ctypes. */
typedef struct {
  int64_t count;
  int64_t n_hours;
  double spread_mu;
  double spread_sigma;
  double peak_low;
  double peak_span;
  double ln_mu;
  double ln_sigma;
  int64_t draw_gauss;
  double mem_mu;
  double mem_sigma;
  int64_t has_sched;
  int64_t sched_period;
  int64_t sched_jitter;
  int64_t sched_max_occ;
  double sched_base_level;
  double level_low;
  double level_span;
  int64_t do_spikes;
  double spike_lam;
  double spike_alpha;
  int64_t n_events;
  double participation;
  double severity_low;
  double severity_span;
} repro_draw_params;

/* Input state vectors and output buffers for one block. */
typedef struct {
  const uint64_t *state_lo;
  const uint64_t *state_hi;
  const uint64_t *inc_lo;
  const uint64_t *inc_hi;
  const double *event_magnitudes;
  double *spreads;
  double *peaks;
  double *ln_rows;
  double *gauss;
  double *mem_rows;
  int64_t *sched_starts;
  double *sched_levels;
  int64_t *sched_jitters;
  int64_t *spike_counts;
  int64_t *spike_starts;
  double *spike_paretos;
  int64_t *spike_durs;
  int64_t spike_capacity;
  int32_t *hit_events;
  int32_t *hit_rows;
  double *hit_sevs;
} repro_draw_buffers;

static void install_state(uint64_t *words, uint32_t *flags, uint64_t s_lo,
                          uint64_t s_hi, uint64_t i_lo, uint64_t i_hi) {
  words[0] = s_lo;
  words[1] = s_hi;
  words[2] = i_lo;
  words[3] = i_hi;
  flags[0] = 0; /* has_uint32 */
  flags[1] = 0; /* uinteger */
}

/* Draw every per-VM variate for one block.  Returns 0 on success or 1
 * when the spike buffers overflowed — *spikes_needed then reports the
 * required capacity and the caller re-runs the block (re-installing
 * each VM's state makes the rerun deterministic). */
int64_t repro_draw_block(bitgen_t *bg, uint64_t *state_words, uint32_t *flags,
                         const repro_draw_params *p,
                         const repro_draw_buffers *b, int64_t *spikes_needed,
                         int64_t *hits_out) {
  const int64_t count = p->count;
  const int64_t n = p->n_hours;
  const int do_events = p->n_events > 0 && p->participation > 0.0;
  int64_t spike_cursor = 0;
  int64_t hits = 0;
  int64_t overflow = 0;

  for (int64_t k = 0; k < count; k++) {
    install_state(state_words, flags, b->state_lo[k], b->state_hi[k],
                  b->inc_lo[k], b->inc_hi[k]);
    b->spreads[k] = random_lognormal(bg, p->spread_mu, p->spread_sigma);
    if (do_events) {
      for (int64_t e = 0; e < p->n_events; e++) {
        double u = random_standard_uniform(bg);
        if (u < p->participation) {
          double severity_u = random_standard_uniform(bg);
          b->hit_events[hits] = (int32_t)e;
          b->hit_rows[hits] = (int32_t)k;
          b->hit_sevs[hits] =
              b->event_magnitudes[e] *
              (p->severity_low + p->severity_span * severity_u);
          hits++;
        }
      }
    }
    b->peaks[k] = p->peak_low + p->peak_span * random_standard_uniform(bg);
    if (p->ln_sigma > 0.0) {
      double *row = b->ln_rows + k * n;
      for (int64_t j = 0; j < n; j++) {
        row[j] = random_lognormal(bg, p->ln_mu, p->ln_sigma);
      }
    }
    if (p->draw_gauss) {
      random_standard_normal_fill(bg, (npy_intp)n, b->gauss + k * n);
    }
    if (p->has_sched) {
      uint64_t start;
      random_bounded_uint64_fill(bg, 0, (uint64_t)(p->sched_period - 1), 1,
                                 false, &start);
      b->sched_starts[k] = (int64_t)start;
      b->sched_levels[k] =
          p->sched_base_level *
          (p->level_low + p->level_span * random_standard_uniform(bg));
      if (p->sched_jitter > 0 && (int64_t)start < n) {
        int64_t occurrences = (n - 1 - (int64_t)start) / p->sched_period + 1;
        random_bounded_uint64_fill(
            bg, (uint64_t)(-p->sched_jitter), (uint64_t)(2 * p->sched_jitter),
            (npy_intp)occurrences, false,
            (uint64_t *)(b->sched_jitters + k * p->sched_max_occ));
      }
    }
    if (p->do_spikes) {
      int64_t n_spikes = (int64_t)random_poisson(bg, p->spike_lam);
      if (n_spikes > 0) {
        b->spike_counts[k] = n_spikes;
        if (!overflow && spike_cursor + n_spikes <= b->spike_capacity) {
          random_bounded_uint64_fill(
              bg, 0, (uint64_t)(n - 1), (npy_intp)n_spikes, false,
              (uint64_t *)(b->spike_starts + spike_cursor));
          for (int64_t i = 0; i < n_spikes; i++) {
            b->spike_paretos[spike_cursor + i] =
                random_pareto(bg, p->spike_alpha);
          }
          random_bounded_uint64_fill(
              bg, 1, 2, (npy_intp)n_spikes, false,
              (uint64_t *)(b->spike_durs + spike_cursor));
        } else {
          /* Undersized buffer: keep counting so the caller learns the
           * required capacity, but stop writing.  The partial draws are
           * discarded by the deterministic rerun. */
          overflow = 1;
        }
        spike_cursor += n_spikes;
      }
    }
    if (p->mem_sigma > 0.0) {
      double *row = b->mem_rows + k * n;
      for (int64_t j = 0; j < n; j++) {
        row[j] = random_lognormal(bg, p->mem_mu, p->mem_sigma);
      }
    }
  }
  *spikes_needed = spike_cursor;
  *hits_out = hits;
  return overflow;
}

/* Fixed draw choreography used by fastdraw.py to prove, at load time,
 * that this library's distribution calls are bit-identical to numpy's
 * Generator — including the Lemire bounded-integer path and the
 * buffered-uint32 handling that install_state must reset. */
void repro_draw_probe(bitgen_t *bg, double *out_f, int64_t *out_i) {
  uint64_t tmp;
  uint64_t pair[2];
  out_f[0] = random_lognormal(bg, 0.1, 0.9);
  random_standard_normal_fill(bg, 3, out_f + 1);
  out_f[4] = random_standard_uniform(bg);
  out_f[5] = random_pareto(bg, 2.5);
  random_bounded_uint64_fill(bg, 0, 23, 1, false, &tmp);
  out_i[0] = (int64_t)tmp;
  out_i[1] = (int64_t)random_poisson(bg, 5.04);
  random_bounded_uint64_fill(bg, (uint64_t)(int64_t)-3, 6, 1, false, &tmp);
  out_i[2] = (int64_t)tmp;
  random_bounded_uint64_fill(bg, 1, 2, 2, false, pair);
  out_i[3] = (int64_t)pair[0];
  out_i[4] = (int64_t)pair[1];
}

/* First-order AR(1) recurrence, matching models.ar1_filter_matrix:
 * out[0] = stationary_std * g[0]; out[t] = phi*out[t-1] + sigma*g[t].
 * scipy's lfilter computes sigma*g[t] + phi*out[t-1]; IEEE addition is
 * commutative bitwise and both products round identically, so rows are
 * bit-identical (given -ffp-contract=off). */
void repro_ar1_filter(const double *gauss, double *out, int64_t count,
                      int64_t n, double phi, double sigma,
                      double stationary_std) {
  for (int64_t k = 0; k < count; k++) {
    const double *g = gauss + k * n;
    double *y = out + k * n;
    double previous = stationary_std * g[0];
    y[0] = previous;
    for (int64_t t = 1; t < n; t++) {
      previous = phi * previous + sigma * g[t];
      y[t] = previous;
    }
  }
}

/* EWMA recurrence matching models.ewma_smooth_matrix:
 * out[0] = v[0]; out[t] = alpha*v[t] + one_minus*out[t-1], with
 * one_minus = 1 - alpha precomputed by the caller. */
void repro_ewma_filter(const double *values, double *out, int64_t count,
                       int64_t n, double alpha, double one_minus) {
  for (int64_t k = 0; k < count; k++) {
    const double *v = values + k * n;
    double *y = out + k * n;
    double previous = v[0];
    y[0] = previous;
    for (int64_t t = 1; t < n; t++) {
      previous = alpha * v[t] + one_minus * previous;
      y[t] = previous;
    }
  }
}

/* The fused multiplicative-texture pass:
 *   util *= texture_a; util *= texture_b; util *= column[t]
 * with any operand optionally absent.  Composing elementwise passes
 * per element performs the identical sequence of IEEE multiplies, so
 * the result is bit-identical to the separate numpy passes while
 * reading/writing the big matrix once instead of three times. */
void repro_texture_mul(double *util, const double *texture_a,
                       const double *texture_b, const double *column,
                       int64_t count, int64_t n) {
  for (int64_t k = 0; k < count; k++) {
    double *u = util + k * n;
    const double *a = texture_a ? texture_a + k * n : NULL;
    const double *b = texture_b ? texture_b + k * n : NULL;
    for (int64_t t = 0; t < n; t++) {
      double value = u[t];
      if (a) {
        value = value * a[t];
      }
      if (b) {
        value = value * b[t];
      }
      if (column) {
        value = value * column[t];
      }
      u[t] = value;
    }
  }
}

/* Like repro_texture_mul, but the base operand is gathered from a
 * periodic per-row pattern instead of read from util: one pass writes
 *   util[k][t] = pattern[k][(start_hour + t) % period] * a * b * col
 * Bit-identical to expanding the pattern (models._tile_periodic — a
 * pure copy) and then running the multiply passes, without ever
 * materializing the expanded matrix. */
void repro_texture_fill(double *util, const double *pattern, int64_t period,
                        int64_t start_hour, const double *texture_a,
                        const double *texture_b, const double *column,
                        int64_t count, int64_t n) {
  for (int64_t k = 0; k < count; k++) {
    double *u = util + k * n;
    const double *p = pattern + k * period;
    const double *a = texture_a ? texture_a + k * n : NULL;
    const double *b = texture_b ? texture_b + k * n : NULL;
    int64_t index = start_hour % period;
    for (int64_t t = 0; t < n; t++) {
      double value = p[index];
      if (++index == period) {
        index = 0;
      }
      if (a) {
        value = value * a[t];
      }
      if (b) {
        value = value * b[t];
      }
      if (column) {
        value = value * column[t];
      }
      u[t] = value;
    }
  }
}

/* Fused per-row scaling: util = (util * numerator[k]) / denominator[k],
 * one matrix pass instead of a broadcast multiply plus a broadcast
 * divide (same two roundings per element). */
void repro_row_scale(double *util, const double *numerator,
                     const double *denominator, int64_t count, int64_t n) {
  for (int64_t k = 0; k < count; k++) {
    double *u = util + k * n;
    const double scale = numerator[k];
    const double divisor = denominator[k];
    for (int64_t t = 0; t < n; t++) {
      u[t] = (u[t] * scale) / divisor;
    }
  }
}

/* The fused CPU->memory boundary: per row
 *   util     = clip(util, clip_low, clip_high)        (written back)
 *   rpe2     = util * scale                           (when rpe2 != NULL)
 *   peak     = max(row max of clipped util, peak_floor)
 *   committed = util / peak
 * clip matches numpy's minimum(maximum(x, low), high) on finite data;
 * the row max is an exact, order-free reduction; the second sweep runs
 * while the row is still cache-hot.  Bit-identical to the four
 * separate numpy passes. */
void repro_clip_scale_div(double *util, double *rpe2, double *committed,
                          int64_t count, int64_t n, double clip_low,
                          double clip_high, double scale,
                          double peak_floor) {
  for (int64_t k = 0; k < count; k++) {
    double *u = util + k * n;
    double *r = rpe2 ? rpe2 + k * n : NULL;
    double *c = committed + k * n;
    double peak = clip_low;
    for (int64_t t = 0; t < n; t++) {
      double value = u[t];
      if (value < clip_low) {
        value = clip_low;
      }
      if (value > clip_high) {
        value = clip_high;
      }
      u[t] = value;
      if (r) {
        r[t] = value * scale;
      }
      if (value > peak) {
        peak = value;
      }
    }
    if (peak < peak_floor) {
      peak = peak_floor;
    }
    for (int64_t t = 0; t < n; t++) {
      c[t] = u[t] / peak;
    }
  }
}

/* The fused memory tail: starting from committed = normalized_load ^
 * exponent (computed by numpy, whose SIMD pow this must not replace),
 * apply per row, in the reference pass order,
 *   driver   = ewma(committed, alpha)           (recurrence)
 *   value    = driver * dynamic_frac + base_frac (two roundings)
 *   value   *= noise  (when present)
 *   value   *= configured_gb
 *   clip to [clip_low, clip_high]
 * writing the result back into `committed`.  Every step rounds exactly
 * like the corresponding numpy pass; clip matches numpy's
 * minimum(maximum(x, low), high) on the finite values generated here. */
void repro_mem_finish(double *committed, const double *noise, int64_t count,
                      int64_t n, double alpha, double one_minus,
                      double dynamic_frac, double base_frac,
                      double configured_gb, double clip_low,
                      double clip_high) {
  for (int64_t k = 0; k < count; k++) {
    double *v = committed + k * n;
    const double *noise_row = noise ? noise + k * n : NULL;
    double previous = v[0];
    for (int64_t t = 0; t < n; t++) {
      double driver;
      if (t == 0) {
        driver = previous;
      } else {
        previous = alpha * v[t] + one_minus * previous;
        driver = previous;
      }
      double value = driver * dynamic_frac;
      value = value + base_frac;
      if (noise_row) {
        value = value * noise_row[t];
      }
      value = value * configured_gb;
      if (value < clip_low) {
        value = clip_low;
      }
      if (value > clip_high) {
        value = clip_high;
      }
      v[t] = value;
    }
  }
}
