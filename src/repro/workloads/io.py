"""Trace set (de)serialization.

Real deployments of the consolidation tool pull monitoring data from a
central warehouse (Section 3.1); this module is the equivalent exchange
format for the library.  A :class:`~repro.workloads.trace.TraceSet` is
stored as a single ``.npz`` archive:

* ``cpu_util`` — (n_servers, n_points) float matrix,
* ``memory_gb`` — (n_servers, n_points) float matrix,
* ``meta`` — a JSON document with the set name, sampling interval, and
  per-server identity (vm id, workload class, labels, source spec).

The format is self-contained and versioned so archives survive library
upgrades.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import TraceError
from repro.infrastructure.server import ServerSpec
from repro.infrastructure.vm import VirtualMachine
from repro.workloads.trace import ResourceTrace, ServerTrace, TraceSet

__all__ = ["save_trace_set", "load_trace_set"]

FORMAT_VERSION = 1


def save_trace_set(trace_set: TraceSet, path: Union[str, Path]) -> Path:
    """Write a trace set to a ``.npz`` archive; returns the path written."""
    path = Path(path)
    if len(trace_set) == 0:
        raise TraceError(f"refusing to save empty trace set {trace_set.name!r}")
    servers = []
    for trace in trace_set:
        servers.append(
            {
                "vm_id": trace.vm.vm_id,
                "memory_config_gb": trace.vm.memory_config_gb,
                "workload_class": trace.vm.workload_class,
                "labels": dict(trace.vm.labels),
                "source_spec": {
                    "cpu_rpe2": trace.source_spec.cpu_rpe2,
                    "memory_gb": trace.source_spec.memory_gb,
                    "model_name": trace.source_spec.model_name,
                },
            }
        )
    meta = {
        "format_version": FORMAT_VERSION,
        "name": trace_set.name,
        "interval_hours": trace_set.interval_hours,
        "servers": servers,
    }
    np.savez_compressed(
        path,
        cpu_util=trace_set.cpu_rpe2_matrix()
        / np.array([[t.source_spec.cpu_rpe2] for t in trace_set]),
        memory_gb=trace_set.memory_gb_matrix(),
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )
    # np.savez appends .npz when missing; report the real path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_trace_set(path: Union[str, Path]) -> TraceSet:
    """Load a trace set previously written by :func:`save_trace_set`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace archive not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        try:
            meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
            cpu_util = archive["cpu_util"]
            memory_gb = archive["memory_gb"]
        except KeyError as exc:
            raise TraceError(f"{path}: missing archive member {exc}") from None
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise TraceError(
            f"{path}: unsupported format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    servers = meta["servers"]
    if cpu_util.shape[0] != len(servers) or memory_gb.shape != cpu_util.shape:
        raise TraceError(
            f"{path}: matrix shapes {cpu_util.shape}/{memory_gb.shape} do "
            f"not match {len(servers)} server records"
        )
    interval_hours = float(meta["interval_hours"])
    trace_set = TraceSet(name=meta["name"])
    for row, record in enumerate(servers):
        spec = ServerSpec(**record["source_spec"])
        vm = VirtualMachine(
            vm_id=record["vm_id"],
            memory_config_gb=record["memory_config_gb"],
            workload_class=record["workload_class"],
            labels=record["labels"],
        )
        trace_set.add(
            ServerTrace(
                vm=vm,
                source_spec=spec,
                cpu_util=ResourceTrace(
                    cpu_util[row], interval_hours=interval_hours, unit="fraction"
                ),
                memory_gb=ResourceTrace(
                    memory_gb[row], interval_hours=interval_hours, unit="GB"
                ),
            )
        )
    return trace_set
