"""Application resource-scaling model (the paper's Olio aside, §4.1).

The paper explains the low burstiness of memory with a benchmark
experiment: driving the Olio web benchmark from 10 to 60 operations/sec
(6× throughput) increased CPU demand from 0.18 to 1.42 cores (7.9×) but
memory by only 3×.  CPU scales super-linearly with throughput (context
switching, cache pressure) while memory scales sub-linearly (shared
buffers, connection pools amortize).

We model both as power laws anchored at a reference throughput:

    cpu(t)    = cpu_ref    * (t / t_ref) ** cpu_exponent
    memory(t) = memory_ref * (t / t_ref) ** memory_exponent

With the default exponents the model reproduces the quoted 7.9× / 3×
factors over a 6× throughput range; the memory exponent (~0.61) is the
same sub-linear exponent the trace generators use to derive memory
traces from CPU traces, tying the generator design back to the paper's
own evidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["AppResourceModel", "OLIO_MODEL"]


@dataclass(frozen=True)
class AppResourceModel:
    """Power-law throughput → (CPU, memory) demand model."""

    name: str
    reference_throughput: float
    cpu_cores_at_reference: float
    memory_gb_at_reference: float
    cpu_exponent: float
    memory_exponent: float

    def __post_init__(self) -> None:
        if self.reference_throughput <= 0:
            raise ConfigurationError("reference_throughput must be > 0")
        if self.cpu_cores_at_reference <= 0 or self.memory_gb_at_reference <= 0:
            raise ConfigurationError("reference demands must be > 0")
        if self.cpu_exponent <= 0 or self.memory_exponent <= 0:
            raise ConfigurationError("exponents must be > 0")

    def cpu_cores(self, throughput: float) -> float:
        """CPU demand in cores at the given throughput."""
        self._check_throughput(throughput)
        ratio = throughput / self.reference_throughput
        return self.cpu_cores_at_reference * ratio**self.cpu_exponent

    def memory_gb(self, throughput: float) -> float:
        """Memory demand in GB at the given throughput."""
        self._check_throughput(throughput)
        ratio = throughput / self.reference_throughput
        return self.memory_gb_at_reference * ratio**self.memory_exponent

    def scaling_factors(
        self, low_throughput: float, high_throughput: float
    ) -> Tuple[float, float, float]:
        """(throughput×, CPU×, memory×) between two operating points.

        For the Olio defaults, ``scaling_factors(10, 60)`` returns
        approximately ``(6.0, 7.9, 3.0)`` — the paper's quoted numbers.
        """
        self._check_throughput(low_throughput)
        self._check_throughput(high_throughput)
        if high_throughput < low_throughput:
            raise ConfigurationError(
                "high_throughput must be >= low_throughput"
            )
        throughput_factor = high_throughput / low_throughput
        return (
            throughput_factor,
            self.cpu_cores(high_throughput) / self.cpu_cores(low_throughput),
            self.memory_gb(high_throughput) / self.memory_gb(low_throughput),
        )

    def demand_arrays(
        self, throughputs: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched ``(cpu_cores, memory_gb)`` demand for many throughputs.

        One broadcast power per resource instead of a scalar call per
        operating point — this is the array-engine face of the model,
        used when deriving whole demand curves (e.g. a throughput grid
        per VM class) in one shot.
        """
        values = np.asarray(throughputs, dtype=float)
        if values.size and not bool(np.all(values > 0)):
            raise ConfigurationError("throughput must be > 0")
        ratios = values / self.reference_throughput
        return (
            self.cpu_cores_at_reference * ratios**self.cpu_exponent,
            self.memory_gb_at_reference * ratios**self.memory_exponent,
        )

    def sweep(
        self, throughputs: Sequence[float]
    ) -> Tuple[Tuple[float, float, float], ...]:
        """(throughput, cpu_cores, memory_gb) rows for a report table."""
        cpu, memory = self.demand_arrays(throughputs)
        return tuple(
            (float(t), float(c), float(m))
            for t, c, m in zip(throughputs, cpu, memory)
        )

    @staticmethod
    def _check_throughput(throughput: float) -> None:
        if throughput <= 0:
            raise ConfigurationError(
                f"throughput must be > 0, got {throughput}"
            )


def _exponent(factor: float, range_factor: float) -> float:
    """Solve ``range_factor ** e == factor`` for e."""
    return math.log(factor) / math.log(range_factor)


#: The paper's measurement: Olio on a Xeon dual-core, 10 → 60 ops/sec gave
#: CPU 0.18 → 1.42 cores (7.9×) and memory 3× — exponents fitted exactly.
OLIO_MODEL = AppResourceModel(
    name="olio",
    reference_throughput=10.0,
    cpu_cores_at_reference=0.18,
    memory_gb_at_reference=0.55,
    cpu_exponent=_exponent(1.42 / 0.18, 6.0),
    memory_exponent=_exponent(3.0, 6.0),
)
