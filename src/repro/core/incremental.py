"""Reusable incremental placement state (assignment + accumulators).

:class:`IncrementalPlan` is the array state the dynamic planner carries
across intervals — per-VM assignment rows, per-host resource
accumulators, and per-host VM row lists — refactored out of
``core/dynamic_vector.py`` so the online controller
(:mod:`repro.service`) can replan *deltas* against the same state the
batch planner packs with.

Two mutation disciplines coexist, each with its own exactness contract:

* **Append folds** (:meth:`assign`) — the batch planner's discipline:
  bodies accumulate ``+=`` in FFD placement order and are never
  recomputed, reproducing the scalar reference's left folds bit for bit
  (see ``docs/PERFORMANCE.md``).
* **Canonical folds** (:meth:`apply_delta`, :meth:`set_demand`,
  :meth:`from_assignment`) — the online controller's discipline: after
  every delta the touched hosts' bodies are *re-folded* over their VM
  rows in ascending row order.  Because the fold order is canonical, a
  plan mutated by any sequence of deltas is **bitwise identical** to a
  plan rebuilt from scratch from the same assignment — the property the
  incremental-vs-batch equivalence suite pins
  (``tests/core/test_incremental_plan.py``), and the reason float
  drift can never accumulate across a long-running controller's life.

:meth:`apply_delta` is atomic: either every move commits or the plan is
restored to its pre-call state, so a mid-delta misfit can never leave
corrupt accumulators behind (the controller's fault-tolerance story
leans on this).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import PlacementError
from repro.infrastructure.server import PhysicalServer
from repro.infrastructure.vm import VMDemand

__all__ = ["HostCapacities", "IncrementalPlan"]

#: Same admission slack as :class:`repro.placement.binpacking.Bin`.
_SLACK = 1e-9


class HostCapacities:
    """Bound-scaled per-host capacity vectors, fixed for a plan's life.

    Python-float lists carry the exactness contract (every comparison
    uses the same ``capacity + 1e-9`` float the scalar ``Bin`` derives);
    the numpy mirrors serve vectorized candidate scoring.
    """

    __slots__ = (
        "host_ids", "n", "utilization_bound",
        "cap_cpu", "cap_mem", "cap_net", "cap_dsk",
        "eps_cpu", "eps_mem", "eps_net", "eps_dsk",
        "cap_cpu_np", "cap_mem_np",
        "eps_cpu_np", "eps_mem_np", "eps_net_np", "eps_dsk_np",
        "index_of",
    )

    def __init__(
        self,
        hosts: Sequence[PhysicalServer],
        utilization_bound: float,
    ) -> None:
        if not hosts:
            raise PlacementError("no hosts to pack onto")
        self.host_ids: List[str] = [h.host_id for h in hosts]
        self.n = len(hosts)
        self.utilization_bound = utilization_bound
        # Bin.for_host capacities (bound-scaled), as python floats.
        self.cap_cpu = [h.cpu_rpe2 * utilization_bound for h in hosts]
        self.cap_mem = [h.memory_gb * utilization_bound for h in hosts]
        self.cap_net = [
            h.spec.network_mbps * utilization_bound for h in hosts
        ]
        self.cap_dsk = [h.spec.disk_mbps * utilization_bound for h in hosts]
        # fits() compares against capacity + 1e-9; precomputing the sum
        # reproduces the same float the reference derives per call.
        self.eps_cpu = [c + _SLACK for c in self.cap_cpu]
        self.eps_mem = [c + _SLACK for c in self.cap_mem]
        self.eps_net = [c + _SLACK for c in self.cap_net]
        self.eps_dsk = [c + _SLACK for c in self.cap_dsk]
        self.cap_cpu_np = np.array(self.cap_cpu)
        self.cap_mem_np = np.array(self.cap_mem)
        self.eps_cpu_np = np.array(self.eps_cpu)
        self.eps_mem_np = np.array(self.eps_mem)
        self.eps_net_np = np.array(self.eps_net)
        self.eps_dsk_np = np.array(self.eps_dsk)
        self.index_of: Dict[str, int] = {
            host_id: i for i, host_id in enumerate(self.host_ids)
        }


class IncrementalPlan:
    """Mutable VM→host assignment with per-host resource accumulators."""

    __slots__ = (
        "caps", "vm_ids", "cpu", "mem", "net", "dsk",
        "assignment_rows", "vm_rows_of_host",
        "body_cpu", "body_mem", "body_net", "body_dsk",
        "_row_of",
    )

    def __init__(
        self,
        caps: HostCapacities,
        vm_ids: Sequence[str],
        cpu: Sequence[float],
        mem: Sequence[float],
        net: Optional[Sequence[float]] = None,
        dsk: Optional[Sequence[float]] = None,
    ) -> None:
        n_vms = len(vm_ids)
        if len(cpu) != n_vms or len(mem) != n_vms:
            raise PlacementError(
                "IncrementalPlan: demand vectors must match vm_ids"
            )
        self.caps = caps
        self.vm_ids: List[str] = list(vm_ids)
        self.cpu: List[float] = [float(v) for v in cpu]
        self.mem: List[float] = [float(v) for v in mem]
        self.net: List[float] = (
            [float(v) for v in net] if net is not None else [0.0] * n_vms
        )
        self.dsk: List[float] = (
            [float(v) for v in dsk] if dsk is not None else [0.0] * n_vms
        )
        if len(self.net) != n_vms or len(self.dsk) != n_vms:
            raise PlacementError(
                "IncrementalPlan: I/O demand vectors must match vm_ids"
            )
        self.assignment_rows: List[int] = [-1] * n_vms
        self.vm_rows_of_host: List[List[int]] = [
            [] for _ in range(caps.n)
        ]
        self.body_cpu: List[float] = [0.0] * caps.n
        self.body_mem: List[float] = [0.0] * caps.n
        self.body_net: List[float] = [0.0] * caps.n
        self.body_dsk: List[float] = [0.0] * caps.n
        self._row_of: Dict[str, int] = {
            vm_id: row for row, vm_id in enumerate(self.vm_ids)
        }
        if len(self._row_of) != n_vms:
            raise PlacementError("IncrementalPlan: duplicate vm_ids")

    # -- construction ----------------------------------------------------

    @classmethod
    def from_demands(
        cls, caps: HostCapacities, demands: Sequence[VMDemand]
    ) -> "IncrementalPlan":
        """Unassigned plan over sized scalar demands (controller path)."""
        return cls(
            caps,
            [d.vm_id for d in demands],
            [d.cpu_rpe2 for d in demands],
            [d.memory_gb for d in demands],
            [d.network_mbps for d in demands],
            [d.disk_mbps for d in demands],
        )

    @classmethod
    def from_assignment(
        cls,
        caps: HostCapacities,
        vm_ids: Sequence[str],
        cpu: Sequence[float],
        mem: Sequence[float],
        assignment: Dict[str, str],
        net: Optional[Sequence[float]] = None,
        dsk: Optional[Sequence[float]] = None,
    ) -> "IncrementalPlan":
        """Rebuild canonical-fold state from scratch for an assignment.

        The from-scratch twin of a delta-mutated plan: per host, VM rows
        ascend and bodies are folded in that order, so the result is
        bitwise comparable with any plan maintained via
        :meth:`apply_delta` / :meth:`set_demand`.
        """
        plan = cls(caps, vm_ids, cpu, mem, net, dsk)
        for vm_id, host_id in assignment.items():
            row = plan.row_of(vm_id)
            host = plan._host_index(host_id)
            plan.assignment_rows[row] = host
            plan.vm_rows_of_host[host].append(row)
        for host in range(caps.n):
            if plan.vm_rows_of_host[host]:
                plan._refold_host(host)
        return plan

    # -- queries ---------------------------------------------------------

    @property
    def n_vms(self) -> int:
        return len(self.vm_ids)

    @property
    def n_hosts(self) -> int:
        return self.caps.n

    def row_of(self, vm_id: str) -> int:
        try:
            return self._row_of[vm_id]
        except KeyError:
            raise PlacementError(
                f"unknown vm_id {vm_id!r} in IncrementalPlan"
            ) from None

    def _host_index(self, host_id: str) -> int:
        try:
            return self.caps.index_of[host_id]
        except KeyError:
            raise PlacementError(
                f"unknown host {host_id!r} in IncrementalPlan"
            ) from None

    def host_of(self, vm_id: str) -> Optional[str]:
        """Current host of a VM, or ``None`` while unassigned."""
        host = self.assignment_rows[self.row_of(vm_id)]
        return self.caps.host_ids[host] if host >= 0 else None

    def assignment(self) -> Dict[str, str]:
        """The current VM→host mapping (assigned VMs only)."""
        return {
            vm_id: self.caps.host_ids[host]
            for vm_id, host in zip(self.vm_ids, self.assignment_rows)
            if host >= 0
        }

    def active_hosts(self) -> List[int]:
        """Host indices currently carrying at least one VM."""
        return [
            host
            for host in range(self.caps.n)
            if self.vm_rows_of_host[host]
        ]

    def affected_hosts(self, changed_vms: Iterable[str]) -> List[int]:
        """Sorted host indices the given VMs currently occupy.

        The replan scope for a batch of changed VMs: only these hosts'
        accumulators can be touched by removing/re-placing them.
        Unassigned VMs contribute no host.
        """
        hosts = {
            self.assignment_rows[self.row_of(vm_id)]
            for vm_id in changed_vms
        }
        hosts.discard(-1)
        return sorted(hosts)

    def fits(self, row: int, host: int) -> bool:
        """Would the VM row fit on the host right now (all resources)?"""
        caps = self.caps
        return (
            self.body_cpu[host] + self.cpu[row] <= caps.eps_cpu[host]
            and self.body_mem[host] + self.mem[row] <= caps.eps_mem[host]
            and self.body_net[host] + self.net[row] <= caps.eps_net[host]
            and self.body_dsk[host] + self.dsk[row] <= caps.eps_dsk[host]
        )

    # -- batch-planner mutation (append folds) ---------------------------

    def assign(self, row: int, host: int) -> None:
        """Place a row, accumulating bodies in placement order.

        No fit check: the batch pack loop checks admission inline before
        calling (and replays the scalar reference's exact float folds by
        adding in FFD order).  Canonical-fold users want
        :meth:`apply_delta` instead.
        """
        self.vm_rows_of_host[host].append(row)
        self.body_cpu[host] += self.cpu[row]
        self.body_mem[host] += self.mem[row]
        self.body_net[host] += self.net[row]
        self.body_dsk[host] += self.dsk[row]
        self.assignment_rows[row] = host

    def clear_host(self, host: int) -> None:
        """Zero a vacated host (rows must be re-assigned by the caller)."""
        self.body_cpu[host] = 0.0
        self.body_mem[host] = 0.0
        self.body_net[host] = 0.0
        self.body_dsk[host] = 0.0
        self.vm_rows_of_host[host] = []

    # -- controller mutation (canonical folds) ---------------------------

    def _refold_host(self, host: int) -> None:
        """Recompute a host's bodies as folds in ascending row order."""
        rows = sorted(self.vm_rows_of_host[host])
        self.vm_rows_of_host[host] = rows
        body_cpu = 0.0
        body_mem = 0.0
        body_net = 0.0
        body_dsk = 0.0
        for row in rows:
            body_cpu += self.cpu[row]
            body_mem += self.mem[row]
            body_net += self.net[row]
            body_dsk += self.dsk[row]
        self.body_cpu[host] = body_cpu
        self.body_mem[host] = body_mem
        self.body_net[host] = body_net
        self.body_dsk[host] = body_dsk

    def _snapshot_hosts(
        self, hosts: Iterable[int]
    ) -> Dict[int, Tuple[List[int], float, float, float, float]]:
        return {
            host: (
                list(self.vm_rows_of_host[host]),
                self.body_cpu[host],
                self.body_mem[host],
                self.body_net[host],
                self.body_dsk[host],
            )
            for host in hosts
        }

    def _restore_hosts(
        self,
        saved: Dict[int, Tuple[List[int], float, float, float, float]],
    ) -> None:
        for host, (rows, cpu, mem, net, dsk) in saved.items():
            self.vm_rows_of_host[host] = rows
            self.body_cpu[host] = cpu
            self.body_mem[host] = mem
            self.body_net[host] = net
            self.body_dsk[host] = dsk

    def set_demand(
        self,
        vm_id: str,
        cpu_rpe2: float,
        memory_gb: float,
        network_mbps: float = 0.0,
        disk_mbps: float = 0.0,
    ) -> None:
        """Update one VM's sized demand, re-folding its host if placed.

        May leave the host over its bound (demand grew in place); the
        controller's overload detector is what reacts to that, so no
        admission check is applied here.
        """
        if cpu_rpe2 < 0 or memory_gb < 0 or network_mbps < 0 or disk_mbps < 0:
            raise PlacementError(
                f"{vm_id}: sized demand must be non-negative"
            )
        row = self.row_of(vm_id)
        self.cpu[row] = float(cpu_rpe2)
        self.mem[row] = float(memory_gb)
        self.net[row] = float(network_mbps)
        self.dsk[row] = float(disk_mbps)
        host = self.assignment_rows[row]
        if host >= 0:
            self._refold_host(host)

    def apply_delta(
        self,
        vm_ids: Sequence[str],
        target_hosts: Sequence[Optional[str]],
    ) -> List[int]:
        """Atomically move/evict a batch of VMs; returns affected hosts.

        Each VM is removed from its current host; VMs whose target is a
        host id are then re-placed in the given order, each admission
        checked against the target's *canonically re-folded* body (prior
        moves of the same delta included).  ``None`` targets evict only.

        On any misfit every touched host and assignment row is restored
        and :class:`~repro.exceptions.PlacementError` is raised — the
        plan is never left half-mutated.
        """
        if len(vm_ids) != len(target_hosts):
            raise PlacementError(
                "apply_delta: vm_ids and target_hosts must pair up"
            )
        rows = [self.row_of(vm_id) for vm_id in vm_ids]
        if len(set(rows)) != len(rows):
            raise PlacementError(
                "apply_delta: a VM may appear only once per delta"
            )
        targets = [
            self._host_index(host_id) if host_id is not None else -1
            for host_id in target_hosts
        ]
        touched = set(targets) | {
            self.assignment_rows[row] for row in rows
        }
        touched.discard(-1)
        saved = self._snapshot_hosts(touched)
        saved_rows = {row: self.assignment_rows[row] for row in rows}
        try:
            # Phase 1: pull every mover off its host.
            sources = set()
            for row in rows:
                host = self.assignment_rows[row]
                if host >= 0:
                    self.vm_rows_of_host[host].remove(row)
                    sources.add(host)
                self.assignment_rows[row] = -1
            for host in sources:
                self._refold_host(host)
            # Phase 2: re-place in order, canonical fold after each.
            for vm_id, row, target in zip(vm_ids, rows, targets):
                if target < 0:
                    continue
                if not self.fits(row, target):
                    raise PlacementError(
                        f"{vm_id} does not fit on "
                        f"{self.caps.host_ids[target]}"
                    )
                self.vm_rows_of_host[target].append(row)
                self.assignment_rows[row] = target
                self._refold_host(target)
        except Exception:
            self._restore_hosts(saved)
            for row, host in saved_rows.items():
                self.assignment_rows[row] = host
            raise
        return sorted(touched)

    def copy(self) -> "IncrementalPlan":
        """Independent deep copy (cycle-level rollback snapshot)."""
        clone = IncrementalPlan(
            self.caps, self.vm_ids, self.cpu, self.mem, self.net, self.dsk
        )
        clone.assignment_rows = list(self.assignment_rows)
        clone.vm_rows_of_host = [
            list(rows) for rows in self.vm_rows_of_host
        ]
        clone.body_cpu = list(self.body_cpu)
        clone.body_mem = list(self.body_mem)
        clone.body_net = list(self.body_net)
        clone.body_dsk = list(self.body_dsk)
        return clone
