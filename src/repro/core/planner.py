"""High-level consolidation planning facade.

:class:`ConsolidationPlanner` wires the paper's five-step flow
(Monitoring → Prediction → Size Estimation → Placement → Execution,
§2.1) into one call: give it monitored traces and a target pool, pick an
algorithm, and get back the emulated consolidation statistics.

This is the entry point a downstream user starts from; the experiment
harness in :mod:`repro.experiments` builds on the same pieces directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.constraints.manager import ConstraintSet
from repro.core.base import (
    ConsolidationAlgorithm,
    PlanningConfig,
    PlanningContext,
)
from repro.emulator.emulator import ConsolidationEmulator
from repro.emulator.results import EmulationResult
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import ConfigurationError
from repro.infrastructure.datacenter import Datacenter
from repro.workloads.trace import TraceSet

__all__ = ["ConsolidationPlanner", "split_window"]

#: Default split: plan on the first 16 days, evaluate on the last 14
#: (the paper's 14-day experiment window, Table 3).
DEFAULT_EVALUATION_DAYS = 14


def split_window(
    traces: TraceSet, evaluation_days: int = DEFAULT_EVALUATION_DAYS
) -> "tuple[TraceSet, TraceSet]":
    """Split monitored traces into (history, evaluation) windows.

    The last ``evaluation_days`` become the evaluation window; everything
    before is planning history.
    """
    evaluation_hours = evaluation_days * 24
    total_hours = traces.duration_hours
    if evaluation_hours >= total_hours:
        raise ConfigurationError(
            f"need history before the {evaluation_days}-day evaluation "
            f"window, but traces cover only {total_hours / 24:.1f} days"
        )
    history = traces.window(0, total_hours - evaluation_hours)
    evaluation = traces.window(total_hours - evaluation_hours, total_hours)
    return history, evaluation


@dataclass
class ConsolidationPlanner:
    """Plans and emulates consolidation for one datacenter.

    Parameters
    ----------
    traces:
        Full monitoring window (e.g. 30 days of hourly data).
    datacenter:
        Target host pool.
    config:
        Shared planning knobs (utilization bound, interval, overhead).
    constraints:
        Deployment constraints applied by every algorithm.
    evaluation_days:
        Length of the evaluation window carved off the end of ``traces``.
    """

    traces: TraceSet
    datacenter: Datacenter
    config: PlanningConfig = field(default_factory=PlanningConfig)
    constraints: ConstraintSet = field(default_factory=ConstraintSet)
    evaluation_days: int = DEFAULT_EVALUATION_DAYS

    def __post_init__(self) -> None:
        history, evaluation = split_window(self.traces, self.evaluation_days)
        self._context = PlanningContext(
            history=history,
            evaluation=evaluation,
            datacenter=self.datacenter,
            constraints=self.constraints,
            config=self.config,
        )
        self._emulator = ConsolidationEmulator(
            trace_set=evaluation,
            datacenter=self.datacenter,
            overhead=self.config.overhead,
        )

    @property
    def context(self) -> PlanningContext:
        return self._context

    def plan(self, algorithm: ConsolidationAlgorithm) -> PlacementSchedule:
        """Run one algorithm's Placement step only."""
        return algorithm.plan(self._context)

    def run(self, algorithm: ConsolidationAlgorithm) -> EmulationResult:
        """Plan with one algorithm and emulate the result."""
        schedule = self.plan(algorithm)
        return self._emulator.evaluate(schedule, scheme=algorithm.name)

    def compare(
        self, algorithms: Sequence[ConsolidationAlgorithm]
    ) -> Dict[str, EmulationResult]:
        """Run several algorithms over identical inputs (paper §5)."""
        names = [a.name for a in algorithms]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"algorithm names must be unique, got {names}"
            )
        return {a.name: self.run(a) for a in algorithms}
