"""Stochastic semi-static consolidation — the PCP variant (paper §5.1).

"This is the consolidation algorithm inspired from the PCP algorithm in
[27].  We use the following PCP parameters: (i) Body of the distribution
= 90 percentile (ii) Tail of the distribution = Max."

Peak-Clustering-based Placement in three steps:

1. **Sizing** — every VM gets a *body* (90th percentile of its history
   demand) and a *tail* (history max minus body).
2. **Peak clustering** — VMs whose demand peaks co-occur (similar peak
   envelopes) are grouped (:func:`repro.analysis.correlation.cluster_by_peaks`).
3. **Cluster-aware packing** — a host reserves the sum of its VMs'
   bodies plus, per resource, the largest *per-cluster tail sum*:
   same-cluster VMs peak together so their tails add; different clusters
   peak at different times so only the worst cluster's burst must fit.
   Stacking one cluster on one host therefore eats tail budget fast,
   which is exactly the spreading pressure PCP wants.

Like vanilla semi-static, PCP relocates during planned downtime and
holds no live-migration reservation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.analysis.correlation import PeakClusters, cluster_by_peaks
from repro.constraints.manager import ConstraintSet
from repro.core.base import ConsolidationAlgorithm, PlanningContext
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import ConfigurationError, PlacementError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer
from repro.infrastructure.vm import VMDemand
from repro.placement.binpacking import sort_decreasing
from repro.placement.plan import Placement
from repro.sizing.estimator import SizeEstimator
from repro.sizing.functions import BodyTailSizing

__all__ = ["StochasticConsolidation"]

#: Below this many active hosts the array engine scans candidates in
#: Python with the exact fold directly — a handful of numpy kernel
#: dispatches on tiny gathers costs more than the scan they replace.
_MASK_MIN_ACTIVE = 48


def _pooled_with(
    tails: Dict[int, float], cluster: int, extra: float, overlap: float
) -> float:
    """``_ClusterBin._pooled`` of ``tails`` with ``extra`` added to one
    cluster — without materializing the updated dict.

    Replays the reference's folds exactly: the updated cluster keeps its
    dict position (a new cluster appends), ``sum`` left-folds the values
    in that insertion order from integer ``0``, and ``max`` keeps the
    first maximum.  One pass instead of two dict copies per fit check.
    """
    worst: Optional[float] = None
    total: float = 0
    seen = False
    for key, value in tails.items():
        if key == cluster:
            value = value + extra
            seen = True
        total = total + value
        if worst is None or value > worst:
            worst = value
    if not seen:
        value = 0.0 + extra
        total = total + value
        if worst is None or value > worst:
            worst = value
    rest = total - worst
    return worst + overlap * rest


def _stochastic_no_fit(demand: VMDemand) -> PlacementError:
    return PlacementError(
        f"VM {demand.vm_id} fits on no host "
        f"(body cpu={demand.cpu_rpe2:.0f}, "
        f"tail cpu={demand.tail_cpu_rpe2:.0f})"
    )


class _ClusterBin:
    """Host packing state with per-cluster tail pooling.

    Reservation per resource:

        sum(bodies) + max_cluster_tail + overlap * (other_tails)

    where ``max_cluster_tail`` is the largest within-cluster tail sum on
    this host and ``other_tails`` is the remaining tail mass.  With
    ``overlap = 0`` this is PCP's idealized bet (only one cluster ever
    peaks at a time); with ``overlap = 1`` it degenerates to max sizing.
    Real workloads sit in between — peak envelopes are correlated beyond
    what any finite clustering captures (shared business factor, shared
    diurnal phase), so a production planner keeps a partial reserve.
    """

    __slots__ = (
        "host",
        "cpu_capacity",
        "memory_capacity",
        "network_capacity",
        "disk_capacity",
        "body_cpu",
        "body_memory",
        "body_network",
        "body_disk",
        "cluster_tail_cpu",
        "cluster_tail_memory",
        "tail_overlap",
        "vm_ids",
    )

    def __init__(
        self, host: PhysicalServer, bound: float, tail_overlap: float
    ) -> None:
        self.host = host
        self.cpu_capacity = host.cpu_rpe2 * bound
        self.memory_capacity = host.memory_gb * bound
        self.network_capacity = host.spec.network_mbps * bound
        self.disk_capacity = host.spec.disk_mbps * bound
        self.body_cpu = 0.0
        self.body_memory = 0.0
        self.body_network = 0.0
        self.body_disk = 0.0
        self.cluster_tail_cpu: Dict[int, float] = {}
        self.cluster_tail_memory: Dict[int, float] = {}
        self.tail_overlap = tail_overlap
        self.vm_ids: List[str] = []

    def _pooled(self, tails: Dict[int, float]) -> float:
        if not tails:
            return 0.0
        worst = max(tails.values())
        rest = sum(tails.values()) - worst
        return worst + self.tail_overlap * rest

    def fits(self, demand: VMDemand, cluster: int) -> bool:
        tail_cpu = dict(self.cluster_tail_cpu)
        tail_cpu[cluster] = tail_cpu.get(cluster, 0.0) + demand.tail_cpu_rpe2
        tail_memory = dict(self.cluster_tail_memory)
        tail_memory[cluster] = (
            tail_memory.get(cluster, 0.0) + demand.tail_memory_gb
        )
        cpu_after = self.body_cpu + demand.cpu_rpe2 + self._pooled(tail_cpu)
        memory_after = (
            self.body_memory + demand.memory_gb + self._pooled(tail_memory)
        )
        network_after = self.body_network + demand.network_mbps
        disk_after = self.body_disk + demand.disk_mbps
        return (
            cpu_after <= self.cpu_capacity + 1e-9
            and memory_after <= self.memory_capacity + 1e-9
            and network_after <= self.network_capacity + 1e-9
            and disk_after <= self.disk_capacity + 1e-9
        )

    def add(self, demand: VMDemand, cluster: int) -> None:
        if not self.fits(demand, cluster):
            raise PlacementError(
                f"{demand.vm_id} does not fit on {self.host.host_id}"
            )
        self.body_cpu += demand.cpu_rpe2
        self.body_memory += demand.memory_gb
        self.body_network += demand.network_mbps
        self.body_disk += demand.disk_mbps
        self.cluster_tail_cpu[cluster] = (
            self.cluster_tail_cpu.get(cluster, 0.0) + demand.tail_cpu_rpe2
        )
        self.cluster_tail_memory[cluster] = (
            self.cluster_tail_memory.get(cluster, 0.0) + demand.tail_memory_gb
        )
        self.vm_ids.append(demand.vm_id)


@dataclass
class StochasticConsolidation(ConsolidationAlgorithm):
    """PCP-style body/tail sizing with cluster-aware tail pooling."""

    name: str = "stochastic"
    body_percentile: float = 90.0
    envelope_quantile: float = 0.9
    cluster_similarity_threshold: float = 0.25
    #: Fraction of cross-cluster tail mass still reserved (see
    #: :class:`_ClusterBin`); 0 = fully trust the clustering.
    tail_overlap_factor: float = 0.55
    utilization_bound: float = 1.0
    #: ``"array"`` prefilters candidates with vectorized pooled-tail
    #: lower bounds (exact single-pass verification on the survivors);
    #: ``"scalar"`` is the retained per-bin reference; ``"auto"`` picks
    #: the array path when no constraints are set.  Identical
    #: placements either way.
    engine: str = "auto"

    def plan(self, context: PlanningContext) -> PlacementSchedule:
        estimator = SizeEstimator(
            sizing=BodyTailSizing(body_percentile=self.body_percentile),
            overhead=context.config.overhead,
            network=context.config.network,
            disk=context.config.disk,
        )
        demands = estimator.estimate_all(context.history)
        clusters = cluster_by_peaks(
            context.history,
            body_quantile=self.envelope_quantile,
            similarity_threshold=self.cluster_similarity_threshold,
        )
        placement = self._pack(
            demands,
            clusters,
            context.datacenter,
            context.constraints,
        )
        return PlacementSchedule.static(
            placement, context.evaluation.duration_hours
        )

    def _pack(
        self,
        demands: List[VMDemand],
        clusters: PeakClusters,
        datacenter: Datacenter,
        constraints: ConstraintSet,
    ) -> Placement:
        hosts = datacenter.hosts
        if not hosts:
            raise PlacementError("no hosts to pack onto")
        if self.engine not in ("auto", "array", "scalar"):
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected 'auto', "
                "'array' or 'scalar'"
            )
        if self.engine == "array" and constraints:
            raise ConfigurationError(
                "engine='array' does not support deployment constraints; "
                "use engine='scalar'"
            )
        cluster_of = {
            vm_id: cluster
            for vm_id, cluster in zip(clusters.vm_ids, clusters.cluster_of)
        }
        ordered = sort_decreasing(demands, hosts[0])
        if constraints:
            # Constrained VMs claim their feasible hosts first (see
            # repro.placement.binpacking.pack).
            ordered = sorted(
                ordered,
                key=lambda d: not constraints.constraints_for(d.vm_id),
            )
        if self.engine == "array" or (
            self.engine == "auto" and not constraints
        ):
            assignment = self._pack_array(ordered, cluster_of, hosts)
        else:
            assignment = self._pack_scalar(
                ordered, cluster_of, hosts, constraints, datacenter
            )
        if constraints:
            constraints.validate(assignment, datacenter)
        return Placement(assignment=assignment)

    def _pack_scalar(
        self,
        ordered: List[VMDemand],
        cluster_of: Mapping[str, int],
        hosts,
        constraints: ConstraintSet,
        datacenter: Datacenter,
    ) -> Dict[str, str]:
        """Reference engine: one ``_ClusterBin.fits`` per candidate."""
        bins = [
            _ClusterBin(host, self.utilization_bound, self.tail_overlap_factor)
            for host in hosts
        ]
        assignment: Dict[str, str] = {}
        for demand in ordered:
            cluster = cluster_of[demand.vm_id]
            target = self._first_fit(
                demand, cluster, bins, assignment, constraints, datacenter
            )
            if target is None:
                raise _stochastic_no_fit(demand)
            target.add(demand, cluster)
            assignment[demand.vm_id] = target.host.host_id
        return assignment

    def _pack_array(
        self,
        ordered: List[VMDemand],
        cluster_of: Mapping[str, int],
        hosts,
    ) -> Dict[str, str]:
        """Vectorized engine (constraint-free path).

        The reference scans every host in index order per VM.  Two
        structural facts shrink that scan without changing its answer:

        * **Empty hosts are interchangeable within a capacity
          signature.**  An empty bin's fit check depends only on its
          (bound-scaled) capacities, so among empties sharing a spec
          only the lowest-index one can ever be the first fit — the
          others are skipped wholesale.  The first *fitting* empty is
          found by checking one representative per distinct signature
          (almost always one).
        * **Active hosts are prefiltered with a vectorized lower
          bound.**  Pooled tails are at least ``max(current worst
          cluster, updated cluster)`` because the overlap term is
          non-negative and the float fold is monotone, so hosts failing
          the bound (plus the exact network/disk checks) can never
          admit the VM.  Survivors are verified in host order with the
          exact single-pass :func:`_pooled_with` fold.  Below a small
          active count the mask costs more than it saves and a direct
          exact scan runs instead.

        The first verified active with index below the first fitting
        empty — or that empty — is exactly the reference's first fit.
        """
        from bisect import insort

        overlap = self.tail_overlap_factor
        bound = self.utilization_bound
        n_hosts = len(hosts)
        n_clusters = (
            max(cluster_of.values(), default=0) + 1 if cluster_of else 1
        )
        eps_cpu = np.array([h.cpu_rpe2 * bound for h in hosts]) + 1e-9
        eps_mem = np.array([h.memory_gb * bound for h in hosts]) + 1e-9
        eps_net = np.array(
            [h.spec.network_mbps * bound for h in hosts]
        ) + 1e-9
        eps_dsk = np.array([h.spec.disk_mbps * bound for h in hosts]) + 1e-9
        eps_cpu_l = eps_cpu.tolist()
        eps_mem_l = eps_mem.tolist()
        eps_net_l = eps_net.tolist()
        eps_dsk_l = eps_dsk.tolist()
        body_cpu = np.zeros(n_hosts)
        body_mem = np.zeros(n_hosts)
        body_net = np.zeros(n_hosts)
        body_dsk = np.zeros(n_hosts)
        # Per-(cluster, host) tail mass for the vectorized bound; the
        # dicts below keep the reference's insertion-order folds for
        # exact verification.
        tail_cpu = np.zeros((n_clusters, n_hosts))
        tail_mem = np.zeros((n_clusters, n_hosts))
        worst_cpu = np.zeros(n_hosts)
        worst_mem = np.zeros(n_hosts)
        tails_cpu: List[Dict[int, float]] = [{} for _ in range(n_hosts)]
        tails_mem: List[Dict[int, float]] = [{} for _ in range(n_hosts)]
        body_cpu_l = [0.0] * n_hosts
        body_mem_l = [0.0] * n_hosts
        body_net_l = [0.0] * n_hosts
        body_dsk_l = [0.0] * n_hosts

        # Empty hosts queued per capacity signature, each queue in
        # ascending index order (host order = queue order).
        empty_queues: Dict[tuple, List[int]] = {}
        for index in reversed(range(n_hosts)):
            spec = hosts[index].spec
            signature = (
                spec.cpu_rpe2, spec.memory_gb,
                spec.network_mbps, spec.disk_mbps,
            )
            empty_queues.setdefault(signature, []).append(index)
        # Queues were built back-to-front so the ascending pop is O(1).
        active: List[int] = []
        active_np = np.empty(n_hosts, dtype=np.intp)

        assignment: Dict[str, str] = {}
        for demand in ordered:
            cluster = cluster_of[demand.vm_id]
            d_cpu = demand.cpu_rpe2
            d_mem = demand.memory_gb
            d_net = demand.network_mbps
            d_dsk = demand.disk_mbps
            d_tcpu = demand.tail_cpu_rpe2
            d_tmem = demand.tail_memory_gb

            # The reference's fit on an empty bin reduces to capacity
            # checks on body+tail (the fold over a one-entry tail dict
            # is exact): the first fitting empty per signature is the
            # queue front, and the global one is the min across them.
            first_empty = n_hosts
            for queue in empty_queues.values():
                if not queue:
                    continue
                index = queue[-1]
                if (
                    index < first_empty
                    and d_cpu + d_tcpu <= eps_cpu_l[index]
                    and d_mem + d_tmem <= eps_mem_l[index]
                    and d_net <= eps_net_l[index]
                    and d_dsk <= eps_dsk_l[index]
                ):
                    first_empty = index
            if len(active) >= _MASK_MIN_ACTIVE:
                idx = active_np[: len(active)]
                mask = (
                    (
                        body_cpu[idx] + d_cpu
                        + np.maximum(
                            worst_cpu[idx], tail_cpu[cluster, idx] + d_tcpu
                        )
                        <= eps_cpu[idx]
                    )
                    & (
                        body_mem[idx] + d_mem
                        + np.maximum(
                            worst_mem[idx], tail_mem[cluster, idx] + d_tmem
                        )
                        <= eps_mem[idx]
                    )
                    & (body_net[idx] + d_net <= eps_net[idx])
                    & (body_dsk[idx] + d_dsk <= eps_dsk[idx])
                )
                candidates = idx[mask].tolist()
            else:
                candidates = active
            target = -1
            for index in candidates:
                if index > first_empty:
                    break
                pooled_cpu = _pooled_with(
                    tails_cpu[index], cluster, d_tcpu, overlap
                )
                if body_cpu_l[index] + d_cpu + pooled_cpu > eps_cpu_l[index]:
                    continue
                pooled_mem = _pooled_with(
                    tails_mem[index], cluster, d_tmem, overlap
                )
                if body_mem_l[index] + d_mem + pooled_mem > eps_mem_l[index]:
                    continue
                if candidates is active and (
                    body_net_l[index] + d_net > eps_net_l[index]
                    or body_dsk_l[index] + d_dsk > eps_dsk_l[index]
                ):
                    continue
                target = index
                break
            if target < 0 and first_empty < n_hosts:
                target = first_empty
                spec = hosts[target].spec
                empty_queues[
                    (
                        spec.cpu_rpe2, spec.memory_gb,
                        spec.network_mbps, spec.disk_mbps,
                    )
                ].pop()
                insort(active, target)
                active_np[: len(active)] = active
            if target < 0:
                raise _stochastic_no_fit(demand)
            body_cpu_l[target] = body_cpu_l[target] + d_cpu
            body_mem_l[target] = body_mem_l[target] + d_mem
            body_net_l[target] = body_net_l[target] + d_net
            body_dsk_l[target] = body_dsk_l[target] + d_dsk
            body_cpu[target] = body_cpu_l[target]
            body_mem[target] = body_mem_l[target]
            body_net[target] = body_net_l[target]
            body_dsk[target] = body_dsk_l[target]
            new_tcpu = tails_cpu[target].get(cluster, 0.0) + d_tcpu
            new_tmem = tails_mem[target].get(cluster, 0.0) + d_tmem
            tails_cpu[target][cluster] = new_tcpu
            tails_mem[target][cluster] = new_tmem
            tail_cpu[cluster, target] = new_tcpu
            tail_mem[cluster, target] = new_tmem
            if new_tcpu > worst_cpu[target]:
                worst_cpu[target] = new_tcpu
            if new_tmem > worst_mem[target]:
                worst_mem[target] = new_tmem
            assignment[demand.vm_id] = hosts[target].host_id
        return assignment

    def _first_fit(
        self,
        demand: VMDemand,
        cluster: int,
        bins: List[_ClusterBin],
        assignment: Mapping[str, str],
        constraints: ConstraintSet,
        datacenter: Datacenter,
    ) -> Optional[_ClusterBin]:
        for candidate in bins:
            if not candidate.fits(demand, cluster):
                continue
            if constraints and not constraints.feasible(
                demand.vm_id, candidate.host, assignment, datacenter
            ):
                continue
            return candidate
        return None
