"""Consolidation algorithms: static, semi-static, stochastic, dynamic."""

from repro.core.base import (
    ConsolidationAlgorithm,
    PlanningConfig,
    PlanningContext,
)
from repro.core.dynamic import DynamicConsolidation
from repro.core.incremental import HostCapacities, IncrementalPlan
from repro.core.planner import ConsolidationPlanner, split_window
from repro.core.powercap import PowerBudgetedConsolidation
from repro.core.semistatic import SemiStaticConsolidation
from repro.core.static import StaticConsolidation
from repro.core.stochastic import StochasticConsolidation

__all__ = [
    "ConsolidationAlgorithm",
    "ConsolidationPlanner",
    "DynamicConsolidation",
    "HostCapacities",
    "IncrementalPlan",
    "PlanningConfig",
    "PlanningContext",
    "PowerBudgetedConsolidation",
    "SemiStaticConsolidation",
    "StaticConsolidation",
    "StochasticConsolidation",
    "split_window",
]
