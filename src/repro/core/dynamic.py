"""Dynamic VM consolidation (paper §2.2.3, §5.1).

"We use a state-of-the-art dynamic consolidation scheme that compares
various adaptation actions possible and selects the one with least cost.
The actual sizing function used in this case is the estimated peak
demand in the consolidation window."

The implementation captures the salient features of pMapper (Verma et
al., Middleware'08) and the cost-sensitive adaptation engine (Jung et
al., Middleware'09):

* **Prediction** — each VM's peak demand for the next interval is
  predicted from its demand history (default:
  :class:`~repro.sizing.prediction.PeriodicPeakPredictor`).  Prediction
  error, not packing, is what causes the contention of Figs. 8/9.
* **Sticky re-placement** — each interval starts from the previous
  placement; a VM moves only when its current host cannot carry its new
  size, so gratuitous migrations are avoided.
* **Cost-aware host vacating** — lightly-loaded hosts are emptied into
  loaded ones and powered off only when the interval's idle-power saving
  exceeds the live-migration cost of the evicted VMs.
* **Migration reservation** — every host is packed only to the
  utilization bound (Table 3 baseline: 0.8); the reserve keeps the
  migrations this scheme depends on reliable (Observation 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.base import ConsolidationAlgorithm, PlanningContext
from repro.core.dynamic_vector import plan_dynamic_array
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import ConfigurationError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer
from repro.infrastructure.vm import VMDemand
from repro.migration.cost import MigrationCostModel
from repro.placement.binpacking import Bin, pack
from repro.placement.plan import Placement
from repro.sizing.estimator import SizeEstimator
from repro.sizing.functions import MaxSizing
from repro.sizing.prediction import PeriodicPeakPredictor, Predictor

__all__ = ["DynamicConsolidation"]

#: Idle power assumed when a host has no catalog model attached (W).
_DEFAULT_IDLE_WATTS = 160.0


@dataclass
class DynamicConsolidation(ConsolidationAlgorithm):
    """Predicted-peak sizing + sticky, cost-aware per-interval packing."""

    name: str = "dynamic"
    predictor: Predictor = field(
        default_factory=lambda: PeriodicPeakPredictor(lookback_days=2)
    )
    migration_cost: MigrationCostModel = field(
        default_factory=MigrationCostModel
    )
    #: Disable to vacate hosts whenever physically possible (ablation).
    consider_migration_cost: bool = True
    #: Intra-interval CPU burst premium.  The deployed system provisions
    #: for the peak of fine-grained (minute-level) samples inside each
    #: 2 h window; hourly averages smooth those bursts away.  A
    #: long-window max (semi-static sizing) already sits on a burst hour
    #: and needs no such premium, so this is a dynamic-only factor.
    #: Memory carries no premium — committed memory barely moves at
    #: sub-hour timescales (Observation 2).
    cpu_burst_factor: float = 1.12
    #: Cap on consolidation sweeps per interval (each sweep is a full
    #: pass over active hosts; convergence is quick in practice).
    max_vacate_sweeps: int = 3
    #: ``"array"`` plans on the columnar kernels
    #: (:func:`~repro.core.dynamic_vector.plan_dynamic_array`),
    #: ``"scalar"`` is the retained per-VM reference below, ``"auto"``
    #: picks the array path whenever no deployment constraints are set
    #: (the array planner does not evaluate constraint hooks) *and* the
    #: instance is exactly this class — subclasses override the scalar
    #: hooks (``_place_interval`` etc.), which the array planner does
    #: not call.  Both engines produce bit-identical schedules.
    engine: str = "auto"

    def __post_init__(self) -> None:
        self._cost_cache: Dict[float, float] = {}

    # ------------------------------------------------------------------

    def plan(self, context: PlanningContext) -> PlacementSchedule:
        if self.engine not in ("auto", "array", "scalar"):
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected 'auto', "
                "'array' or 'scalar'"
            )
        if self.engine == "array" and context.constraints:
            raise ConfigurationError(
                "engine='array' does not support deployment constraints; "
                "use engine='scalar'"
            )
        if self.engine == "array" or (
            self.engine == "auto"
            and not context.constraints
            and type(self) is DynamicConsolidation
        ):
            return plan_dynamic_array(self, context)
        return self._plan_scalar(context)

    def _plan_scalar(self, context: PlanningContext) -> PlacementSchedule:
        """Retained scalar reference (the equivalence-suite baseline)."""
        points = context.points_per_interval
        history_points = context.history.n_points
        vm_ids = list(context.evaluation.vm_ids)
        class_of = {
            trace.vm_id: trace.vm.workload_class
            for trace in context.evaluation
        }
        cpu_full = np.hstack(
            [
                context.history.cpu_rpe2_matrix(),
                context.evaluation.cpu_rpe2_matrix(),
            ]
        )
        memory_full = np.hstack(
            [
                context.history.memory_gb_matrix(),
                context.evaluation.memory_gb_matrix(),
            ]
        )
        estimator = SizeEstimator(
            sizing=MaxSizing(),
            overhead=context.config.overhead,
            network=context.config.network,
            disk=context.config.disk,
        )
        placements: List[Placement] = []
        previous: Optional[Placement] = None
        for interval in range(context.n_intervals):
            now = history_points + interval * points
            demands = self._predict_interval(
                vm_ids, cpu_full, memory_full, now, points, estimator,
                class_of,
            )
            placement = self._place_interval(
                demands, context, previous
            )
            placements.append(placement)
            previous = placement
        return PlacementSchedule.periodic(
            placements, context.config.interval_hours
        )

    # ------------------------------------------------------------------

    def _predict_interval(
        self,
        vm_ids: Sequence[str],
        cpu_full: np.ndarray,
        memory_full: np.ndarray,
        now: int,
        points: int,
        estimator: SizeEstimator,
        class_of: Mapping[str, str],
    ) -> List[VMDemand]:
        """Size every VM at its predicted peak for the next interval."""
        matrix_path = getattr(self.predictor, "predict_peak_matrix", None)
        if matrix_path is not None:
            cpu_peaks = self.cpu_burst_factor * matrix_path(
                cpu_full[:, :now], points, cpu_full[:, now:now + points]
            )
            memory_peaks = matrix_path(
                memory_full[:, :now], points, memory_full[:, now:now + points]
            )
            return [
                estimator.estimate_from_values(
                    vm_id,
                    float(cpu_peaks[row]),
                    float(memory_peaks[row]),
                    class_of.get(vm_id),
                )
                for row, vm_id in enumerate(vm_ids)
            ]
        demands = []
        for row, vm_id in enumerate(vm_ids):
            cpu_peak = self.cpu_burst_factor * self.predictor.predict_peak(
                cpu_full[row, :now], points, cpu_full[row, now:now + points]
            )
            memory_peak = self.predictor.predict_peak(
                memory_full[row, :now],
                points,
                memory_full[row, now:now + points],
            )
            demands.append(
                estimator.estimate_from_values(
                    vm_id, cpu_peak, memory_peak, class_of.get(vm_id)
                )
            )
        return demands

    def _place_interval(
        self,
        demands: List[VMDemand],
        context: PlanningContext,
        previous: Optional[Placement],
    ) -> Placement:
        """One interval's placement: sticky pack, then cost-aware vacate."""
        datacenter = context.datacenter
        bound = context.config.utilization_bound
        hosts = self._host_order(datacenter, previous)
        placement = pack(
            demands,
            hosts,
            utilization_bound=bound,
            strategy="ffd",
            constraints=context.constraints or None,
            datacenter=datacenter,
            preferred=previous.assignment if previous is not None else None,
        )
        return self._vacate_hosts(placement, demands, context)

    @staticmethod
    def _host_order(
        datacenter: Datacenter, previous: Optional[Placement]
    ) -> List[PhysicalServer]:
        """Previously-active hosts first so new load lands on warm iron."""
        if previous is None:
            return list(datacenter.hosts)
        active = previous.hosts_used
        warm = [h for h in datacenter if h.host_id in active]
        cold = [h for h in datacenter if h.host_id not in active]
        return warm + cold

    # ------------------------------------------------------------------

    def _vacate_hosts(
        self,
        placement: Placement,
        demands: List[VMDemand],
        context: PlanningContext,
    ) -> Placement:
        """Empty lightly-loaded hosts into loaded ones when it pays off."""
        datacenter = context.datacenter
        bound = context.config.utilization_bound
        demand_of = {d.vm_id: d for d in demands}
        bins: Dict[str, Bin] = {}
        assignment = dict(placement.assignment)
        for vm_id, host_id in assignment.items():
            target = bins.get(host_id)
            if target is None:
                target = Bin.for_host(datacenter.host(host_id), bound)
                bins[host_id] = target
            target.add(demand_of[vm_id])

        for _ in range(self.max_vacate_sweeps):
            changed = False
            # Visit candidates emptiest-first; the cheapest hosts to
            # vacate free a whole idle-power quantum each.
            for source in sorted(
                bins.values(), key=lambda b: (len(b.vm_ids), b.used_cpu)
            ):
                if source.is_empty or len(bins) <= 1:
                    continue
                if self._try_vacate(
                    source, bins, assignment, demand_of, context
                ):
                    changed = True
            empty = [host_id for host_id, b in bins.items() if b.is_empty]
            for host_id in empty:
                del bins[host_id]
            if not changed:
                break
        return Placement(assignment=assignment)

    def _try_vacate(
        self,
        source: Bin,
        bins: Dict[str, Bin],
        assignment: Dict[str, str],
        demand_of: Mapping[str, VMDemand],
        context: PlanningContext,
    ) -> bool:
        """Move all of ``source``'s VMs elsewhere if benefit > cost."""
        constraints = context.constraints
        datacenter = context.datacenter
        moves: List[tuple] = []
        # Candidate order computed once per vacate attempt: residuals
        # only drift via this attempt's own pending moves, which the fit
        # check accounts for exactly.
        candidates = sorted(
            (b for b in bins.values() if b is not source and not b.is_empty),
            key=lambda b: b.residual(),
        )
        for vm_id in sorted(
            source.vm_ids,
            key=lambda v: demand_of[v].cpu_rpe2,
            reverse=True,
        ):
            demand = demand_of[vm_id]
            target = self._find_target(
                vm_id,
                demand,
                candidates,
                assignment,
                moves,
                context,
                demand_of,
            )
            if target is None:
                return False
            moves.append((vm_id, target))

        if self.consider_migration_cost:
            cost_wh = sum(
                self._cached_cost(demand_of[vm_id].memory_gb)
                for vm_id, _ in moves
            )
            benefit_wh = (
                self._idle_watts(source.host) * context.config.interval_hours
            )
            if benefit_wh <= cost_wh:
                return False

        for vm_id, target in moves:
            target.add(demand_of[vm_id])
            assignment[vm_id] = target.host.host_id
        source.body_cpu = 0.0
        source.body_memory = 0.0
        source.body_network = 0.0
        source.body_disk = 0.0
        source.max_tail_cpu = 0.0
        source.max_tail_memory = 0.0
        source.vm_ids.clear()
        return True

    def _find_target(
        self,
        vm_id: str,
        demand: VMDemand,
        candidates: List[Bin],
        assignment: Mapping[str, str],
        pending_moves: List[tuple],
        context: PlanningContext,
        demand_of: Mapping[str, VMDemand],
    ) -> Optional[Bin]:
        """Fullest other host that admits the VM (constraints included)."""
        shadow: Optional[Dict[str, str]] = None
        if context.constraints:
            shadow = dict(assignment)
            for moved_vm, target in pending_moves:
                shadow[moved_vm] = target.host.host_id
        for candidate in candidates:
            if not self._fits_with_pending(
                candidate, demand, pending_moves, demand_of
            ):
                continue
            if context.constraints and not context.constraints.feasible(
                vm_id, candidate.host, shadow, context.datacenter
            ):
                continue
            return candidate
        return None

    @staticmethod
    def _fits_with_pending(
        candidate: Bin,
        demand: VMDemand,
        pending_moves: List[tuple],
        demand_of: Mapping[str, VMDemand],
    ) -> bool:
        """Fit check that also counts not-yet-committed moves.

        While a vacate attempt is being evaluated, earlier VMs of the
        same source may already be aimed at ``candidate``; their demand
        must count or the vacate could overcommit the target.
        """
        pending_cpu = 0.0
        pending_memory = 0.0
        pending_network = 0.0
        pending_disk = 0.0
        for moved_vm, target in pending_moves:
            if target is candidate:
                moved = demand_of[moved_vm]
                pending_cpu += moved.cpu_rpe2
                pending_memory += moved.memory_gb
                pending_network += moved.network_mbps
                pending_disk += moved.disk_mbps
        cpu_after = (
            candidate.body_cpu
            + pending_cpu
            + demand.cpu_rpe2
            + max(candidate.max_tail_cpu, demand.tail_cpu_rpe2)
        )
        memory_after = (
            candidate.body_memory
            + pending_memory
            + demand.memory_gb
            + max(candidate.max_tail_memory, demand.tail_memory_gb)
        )
        network_after = (
            candidate.body_network + pending_network + demand.network_mbps
        )
        disk_after = candidate.body_disk + pending_disk + demand.disk_mbps
        return (
            cpu_after <= candidate.cpu_capacity + 1e-9
            and memory_after <= candidate.memory_capacity + 1e-9
            and network_after <= candidate.network_capacity + 1e-9
            and disk_after <= candidate.disk_capacity + 1e-9
        )

    def _cached_cost(self, memory_gb: float) -> float:
        key = round(memory_gb, 1)
        cost = self._cost_cache.get(key)
        if cost is None:
            cost = self.migration_cost.cost_wh(max(key, 0.1))
            self._cost_cache[key] = cost
        return cost

    def _cached_cost_many(
        self, memory_gb: Sequence[float]
    ) -> List[float]:
        """Batched :meth:`_cached_cost` (array vacate's per-VM costs).

        Keys stay ``round(m, 1)`` — python rounding, not ``np.round`` —
        so cache entries are shared bit-exactly with the scalar path.
        """
        return [self._cached_cost(m) for m in memory_gb]

    @staticmethod
    def _idle_watts(host: PhysicalServer) -> float:
        if host.model is not None:
            return host.model.idle_watts
        return _DEFAULT_IDLE_WATTS
