"""Consolidation algorithm interface and planning context.

Every consolidation variant in the paper consumes the same inputs — a
monitoring *history* window to plan from, an *evaluation* window to be
judged on, a target host pool, and deployment constraints — and produces
a :class:`~repro.emulator.schedule.PlacementSchedule` covering the
evaluation window.  The planning/evaluation split matters: algorithms
may only look at the history (and, for dynamic consolidation, at the
evaluation prefix that has already "happened"); sizing against data the
scheme could not have seen would hide exactly the prediction-error
contention the paper measures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from typing import Optional

from repro.constraints.manager import ConstraintSet
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import ConfigurationError
from repro.infrastructure.datacenter import Datacenter
from repro.sizing.estimator import VirtualizationOverhead
from repro.sizing.network import DiskDemandModel, NetworkDemandModel
from repro.workloads.trace import TraceSet

__all__ = ["PlanningConfig", "PlanningContext", "ConsolidationAlgorithm"]


@dataclass(frozen=True)
class PlanningConfig:
    """Knobs shared by all consolidation variants (paper Table 3).

    Attributes
    ----------
    utilization_bound:
        Fraction of each host usable by *dynamic* consolidation; the
        remainder is the live-migration reservation (baseline 0.8 = 20%
        reserved).  Semi-static variants relocate during downtime and do
        not reserve migration headroom.
    interval_hours:
        Dynamic consolidation interval (baseline: 2 h → 168 intervals
        over the 14-day window).
    overhead:
        Virtualization overhead / dedup model used during sizing.
    network:
        Optional link-bandwidth demand model; when set, every algorithm
        reserves network per VM and placement treats the host link as a
        feasibility constraint (paper §3.1).
    """

    utilization_bound: float = 0.8
    interval_hours: float = 2.0
    overhead: VirtualizationOverhead = field(
        default_factory=VirtualizationOverhead
    )
    network: Optional[NetworkDemandModel] = None
    disk: Optional[DiskDemandModel] = None

    def __post_init__(self) -> None:
        if not 0 < self.utilization_bound <= 1:
            raise ConfigurationError(
                f"utilization_bound must be in (0, 1], got "
                f"{self.utilization_bound}"
            )
        if self.interval_hours <= 0:
            raise ConfigurationError(
                f"interval_hours must be > 0, got {self.interval_hours}"
            )


@dataclass(frozen=True)
class PlanningContext:
    """Everything a consolidation algorithm may look at."""

    history: TraceSet
    evaluation: TraceSet
    datacenter: Datacenter
    constraints: ConstraintSet = field(default_factory=ConstraintSet)
    config: PlanningConfig = field(default_factory=PlanningConfig)

    def __post_init__(self) -> None:
        if set(self.history.vm_ids) != set(self.evaluation.vm_ids):
            raise ConfigurationError(
                "history and evaluation windows must cover the same VMs"
            )
        if self.history.interval_hours != self.evaluation.interval_hours:
            raise ConfigurationError(
                "history and evaluation windows must share the sampling "
                "interval"
            )
        ratio = self.config.interval_hours / self.evaluation.interval_hours
        if ratio != int(ratio):
            raise ConfigurationError(
                f"consolidation interval {self.config.interval_hours}h does "
                f"not align to {self.evaluation.interval_hours}h samples"
            )
        if self.evaluation.duration_hours % self.config.interval_hours != 0:
            raise ConfigurationError(
                "evaluation window must be a whole number of consolidation "
                "intervals"
            )

    @property
    def n_intervals(self) -> int:
        """Consolidation intervals in the evaluation window (paper: 168)."""
        return int(
            self.evaluation.duration_hours // self.config.interval_hours
        )

    @property
    def points_per_interval(self) -> int:
        return int(
            self.config.interval_hours // self.evaluation.interval_hours
        )


class ConsolidationAlgorithm(ABC):
    """One consolidation variant; stateless across :meth:`plan` calls."""

    #: Display name used in reports and figure legends.
    name: str = "unnamed"

    @abstractmethod
    def plan(self, context: PlanningContext) -> PlacementSchedule:
        """Produce a placement schedule covering the evaluation window."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(name={self.name!r})"
