"""Power-budgeted dynamic consolidation (BrownMap-style).

The paper's tooling lineage includes BrownMap (Verma et al.,
Middleware 2010, reference [28]): "enforcing power budget in shared
data centers".  This module extends :class:`DynamicConsolidation` with a
per-interval power budget — the brown-out scenario where the facility
caps draw and the consolidation layer must shed active servers even
when the cost-benefit rule would keep them on.

Mechanism per interval, after normal cost-aware placement:

1. estimate the interval's power from active hosts and their packed
   utilization (same linear model the emulator applies),
2. while the estimate exceeds the budget, *force-vacate* the emptiest
   active host into the remaining ones — allowed to overshoot the
   migration-reservation bound but never a host's full physical
   capacity,
3. stop when the budget is met or nothing can be vacated; the residual
   overshoot is reported so callers can alert.

Forced consolidation trades SLA risk (packing into the reservation)
for power compliance — exactly BrownMap's graceful-degradation deal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.core.base import PlanningContext
from repro.core.dynamic import DynamicConsolidation, _DEFAULT_IDLE_WATTS
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import ConfigurationError
from repro.infrastructure.power import LinearPowerModel
from repro.infrastructure.server import PhysicalServer
from repro.infrastructure.vm import VMDemand
from repro.placement.binpacking import Bin
from repro.placement.plan import Placement

__all__ = ["PowerBudgetedConsolidation"]

_DEFAULT_POWER = LinearPowerModel(
    idle_watts=_DEFAULT_IDLE_WATTS, peak_watts=400.0
)


def _power_model(host: PhysicalServer) -> LinearPowerModel:
    if host.model is not None:
        return LinearPowerModel.from_model(host.model)
    return _DEFAULT_POWER


@dataclass
class PowerBudgetedConsolidation(DynamicConsolidation):
    """Dynamic consolidation under a hard per-interval power budget."""

    name: str = "power-budgeted"
    #: Facility power cap in watts; ``inf`` degenerates to plain dynamic.
    budget_watts: float = float("inf")

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.budget_watts <= 0:
            raise ConfigurationError(
                f"budget_watts must be > 0, got {self.budget_watts}"
            )
        #: Per-interval budget overshoot (W) observed during planning;
        #: reset at each plan() call, indexed by interval.
        self.overshoot_watts: List[float] = []

    def plan(self, context: PlanningContext) -> PlacementSchedule:
        self.overshoot_watts = []
        return super().plan(context)

    def _place_interval(
        self,
        demands: List[VMDemand],
        context: PlanningContext,
        previous: Optional[Placement],
    ) -> Placement:
        placement = super()._place_interval(demands, context, previous)
        placement, overshoot = self._enforce_budget(
            placement, demands, context
        )
        self.overshoot_watts.append(overshoot)
        return placement

    # ------------------------------------------------------------------

    def _estimated_power(
        self, bins: Mapping[str, Bin]
    ) -> float:
        """Planned power: active hosts at their packed CPU utilization."""
        total = 0.0
        for bin_ in bins.values():
            if bin_.is_empty:
                continue
            utilization = min(
                bin_.used_cpu / bin_.host.cpu_rpe2, 1.0
            )
            total += _power_model(bin_.host).power_watts(utilization)
        return total

    def _enforce_budget(
        self,
        placement: Placement,
        demands: List[VMDemand],
        context: PlanningContext,
    ) -> "tuple[Placement, float]":
        """Force-vacate hosts until the power estimate meets the budget."""
        if self.budget_watts == float("inf"):
            return placement, 0.0
        demand_of = {d.vm_id: d for d in demands}
        # Rebuild bins at FULL physical capacity: the budget enforcer may
        # eat into the migration reservation (the documented SLA trade).
        bins: Dict[str, Bin] = {}
        assignment = dict(placement.assignment)
        for vm_id, host_id in assignment.items():
            bin_ = bins.get(host_id)
            if bin_ is None:
                bin_ = Bin.for_host(context.datacenter.host(host_id), 1.0)
                bins[host_id] = bin_
            bin_.add(demand_of[vm_id])

        while self._estimated_power(bins) > self.budget_watts:
            active = [b for b in bins.values() if not b.is_empty]
            if len(active) <= 1:
                break
            source = min(active, key=lambda b: (len(b.vm_ids), b.used_cpu))
            if not self._force_vacate(
                source, bins, assignment, demand_of, context
            ):
                break
        overshoot = max(
            0.0, self._estimated_power(bins) - self.budget_watts
        )
        return Placement(assignment=assignment), overshoot

    def _force_vacate(
        self,
        source: Bin,
        bins: Dict[str, Bin],
        assignment: Dict[str, str],
        demand_of: Mapping[str, VMDemand],
        context: PlanningContext,
    ) -> bool:
        """Vacate ignoring the cost-benefit rule (budget compliance)."""
        moves: List[tuple] = []
        for vm_id in sorted(
            source.vm_ids,
            key=lambda v: demand_of[v].cpu_rpe2,
            reverse=True,
        ):
            demand = demand_of[vm_id]
            shadow = dict(assignment)
            for moved_vm, moved_target in moves:
                shadow[moved_vm] = moved_target.host.host_id
            target = None
            candidates = sorted(
                (
                    b
                    for b in bins.values()
                    if b is not source and not b.is_empty
                ),
                key=lambda b: b.residual(),
            )
            for candidate in candidates:
                if not self._fits_with_pending(
                    candidate, demand, moves, demand_of
                ):
                    continue
                if context.constraints and not context.constraints.feasible(
                    vm_id, candidate.host, shadow, context.datacenter
                ):
                    continue
                target = candidate
                break
            if target is None:
                return False
            moves.append((vm_id, target))
        for vm_id, target in moves:
            target.add(demand_of[vm_id])
            assignment[vm_id] = target.host.host_id
        source.body_cpu = 0.0
        source.body_memory = 0.0
        source.body_network = 0.0
        source.body_disk = 0.0
        source.max_tail_cpu = 0.0
        source.max_tail_memory = 0.0
        source.vm_ids.clear()
        return True
