"""Vanilla semi-static consolidation (paper §2.2.2, §5.1).

"This is vanilla semi-static algorithm that uses peak expected resource
demand for sizing and first-fit-decreasing for placement."

One placement is computed from the history window's peak demand and held
for the whole evaluation window; re-planning happens at the next
(semi-)period with downtime-based relocation, so no live-migration
reservation is taken (the utilization bound is 1.0 regardless of the
dynamic bound in the config).  Contention can still occur when the
evaluation window exceeds the history peak — the paper's isolated
Natural-Resources case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import ConsolidationAlgorithm, PlanningContext
from repro.emulator.schedule import PlacementSchedule
from repro.placement.binpacking import pack
from repro.placement.improve import improve_placement
from repro.sizing.estimator import SizeEstimator
from repro.sizing.functions import MaxSizing, SizingFunction

__all__ = ["SemiStaticConsolidation"]


@dataclass
class SemiStaticConsolidation(ConsolidationAlgorithm):
    """Peak sizing over the history window + FFD placement."""

    name: str = "semi-static"
    sizing: SizingFunction = field(default_factory=MaxSizing)
    strategy: str = "ffd"
    #: Run the evacuation-based local-search pass after greedy packing
    #: (plan-time refinement; relocation happens during downtime anyway).
    local_search: bool = False
    #: Semi-static plans do not hold a live-migration reservation; override
    #: only for what-if studies.
    utilization_bound: float = 1.0
    #: Passed to :meth:`SizeEstimator.estimate_all`: ``"auto"`` takes the
    #: columnar matrix path for Max/BodyTail sizing (bit-identical to the
    #: scalar per-trace path), ``"scalar"`` forces the reference.
    sizing_engine: str = "auto"

    def plan(self, context: PlanningContext) -> PlacementSchedule:
        estimator = SizeEstimator(
            sizing=self.sizing,
            overhead=context.config.overhead,
            network=context.config.network,
            disk=context.config.disk,
        )
        demands = estimator.estimate_all(
            context.history, engine=self.sizing_engine
        )
        placement = pack(
            demands,
            context.datacenter.hosts,
            utilization_bound=self.utilization_bound,
            strategy=self.strategy,
            constraints=context.constraints or None,
            datacenter=context.datacenter,
        )
        if self.local_search:
            placement = improve_placement(
                placement,
                demands,
                context.datacenter.hosts,
                utilization_bound=self.utilization_bound,
                constraints=context.constraints or None,
                datacenter=context.datacenter,
            )
        return PlacementSchedule.static(
            placement, context.evaluation.duration_hours
        )
