"""Array-backed dynamic consolidation planner (``engine="array"``).

:func:`plan_dynamic_array` reproduces
:meth:`repro.core.dynamic.DynamicConsolidation.plan` *bit-identically*
while replacing its per-VM object churn with columnar kernels:

* prediction + sizing happen **once per plan** — a full
  ``(n_vms, n_intervals)`` peak table
  (:func:`~repro.sizing.prediction.build_peak_table`) pushed through
  :meth:`~repro.sizing.estimator.SizeEstimator.estimate_matrix`, so the
  per-interval loop only reads columns;
* the sticky FFD pack keeps its per-host running totals in an
  :class:`~repro.core.incremental.IncrementalPlan` carried across
  intervals (the delta-pack state, shared with the online controller in
  :mod:`repro.service`) instead of rebuilding ``Bin`` objects 360 times;
* vacate sweeps score sources and candidates with vectorized
  residual / idle-power / migration-cost arrays and fall back to exact
  scalar folds only on the short candidate prefix each VM actually
  scans.

Exactness contract (see ``docs/PERFORMANCE.md``): every float the
reference computes is recomputed here by the *same* IEEE-754 operations
in the *same* order — elementwise numpy ops mirror scalar arithmetic
exactly, comparisons use the identical ``capacity + 1e-9`` slack, and
all per-host accumulations replay the reference's left folds (the
plan's append-fold discipline, :meth:`IncrementalPlan.assign`).  The
only reference behaviours intentionally *not* replayed are pure
no-state-change shortcuts (skipping a vacate attempt whose cost gate or
first, largest VM already fails — outcomes the reference also discards).
Dynamic sizing is :class:`~repro.sizing.functions.MaxSizing`, so every
demand tail is exactly ``0.0`` and ``x + max(0.0, 0.0)`` reduces to
``x`` — the two-term fit checks below match the reference's four-term
expressions bit for bit.

This module must not import :mod:`repro.core.dynamic` (the algorithm
object is passed in), keeping the dispatch one-directional.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.core.base import PlanningContext
from repro.core.incremental import HostCapacities, IncrementalPlan
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import PlacementError
from repro.placement.binpacking import _no_fit_error
from repro.placement.plan import Placement
from repro.sizing.estimator import SizeEstimator
from repro.sizing.functions import MaxSizing
from repro.sizing.prediction import build_peak_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.dynamic import DynamicConsolidation

__all__ = ["plan_dynamic_array"]

#: Same admission slack as :class:`repro.placement.binpacking.Bin`.
_SLACK = 1e-9


class _HostArrays:
    """Host objects, capacity vectors, and idle power, fixed per plan."""

    def __init__(self, algorithm: "DynamicConsolidation", context) -> None:
        hosts = list(context.datacenter.hosts)
        self.caps = HostCapacities(
            hosts, context.config.utilization_bound
        )
        self.hosts = hosts
        self.host_ids = self.caps.host_ids
        self.n = self.caps.n
        self.idle_watts = [algorithm._idle_watts(h) for h in hosts]


def plan_dynamic_array(
    algorithm: "DynamicConsolidation", context: PlanningContext
) -> PlacementSchedule:
    """Vectorized twin of ``DynamicConsolidation.plan`` (no constraints)."""
    points = context.points_per_interval
    history_points = context.history.n_points
    vm_ids = list(context.evaluation.vm_ids)
    class_of = {
        trace.vm_id: trace.vm.workload_class
        for trace in context.evaluation
    }
    cpu_full = np.hstack(
        [
            context.history.cpu_rpe2_matrix(),
            context.evaluation.cpu_rpe2_matrix(),
        ]
    )
    memory_full = np.hstack(
        [
            context.history.memory_gb_matrix(),
            context.evaluation.memory_gb_matrix(),
        ]
    )
    estimator = SizeEstimator(
        sizing=MaxSizing(),
        overhead=context.config.overhead,
        network=context.config.network,
        disk=context.config.disk,
    )
    n_intervals = context.n_intervals
    starts = [history_points + i * points for i in range(n_intervals)]
    # Whole-plan peak tables: one kernel call instead of 2 × n_intervals
    # per-interval predictions.  The burst premium is an elementwise
    # scalar multiply — identical to scaling each column on its own.
    cpu_table = algorithm.cpu_burst_factor * build_peak_table(
        algorithm.predictor, cpu_full, points, starts
    )
    memory_table = build_peak_table(
        algorithm.predictor, memory_full, points, starts
    )
    table = estimator.estimate_matrix(
        vm_ids,
        cpu_table,
        memory_table,
        [class_of.get(vm_id) for vm_id in vm_ids],
    )

    host_arrays = _HostArrays(algorithm, context)
    n_vms = len(vm_ids)
    # FFD tie-break: ascending vm_id among equal scores.
    id_rank = np.empty(n_vms, dtype=np.intp)
    id_rank[np.argsort(np.array(vm_ids))] = np.arange(n_vms)

    placements: List[Placement] = []
    prev_rows: Optional[List[int]] = None
    prev_active: Optional[List[bool]] = None
    bound = context.config.utilization_bound
    for interval in range(n_intervals):
        plan, order, appearance = _pack_interval(
            table, interval, host_arrays, id_rank,
            prev_rows, prev_active, vm_ids, bound,
        )
        _vacate_intervals_hosts(
            algorithm, context, host_arrays, plan, appearance
        )
        assignment = {
            vm_ids[row]: host_arrays.host_ids[plan.assignment_rows[row]]
            for row in order
        }
        placements.append(Placement(assignment=assignment))
        prev_rows = plan.assignment_rows
        prev_active = [bool(rows) for rows in plan.vm_rows_of_host]
    return PlacementSchedule.periodic(
        placements, context.config.interval_hours
    )


def _pack_interval(
    table,
    interval: int,
    host_arrays: _HostArrays,
    id_rank: np.ndarray,
    prev_rows: Optional[List[int]],
    prev_active: Optional[List[bool]],
    vm_ids: List[str],
    utilization_bound: float,
) -> Tuple[IncrementalPlan, List[int], List[int]]:
    """Sticky FFD pack of one interval column, delta from ``prev_rows``.

    Replays ``pack(..., strategy="ffd", preferred=previous.assignment)``
    exactly: per VM in FFD order, the previous host is tried first and
    a warm-first host scan runs only for displaced VMs.  Returns the
    packed :class:`IncrementalPlan`, the FFD order, and the host
    appearance order (the vacate sweeps' bin order).
    """
    caps = host_arrays.caps
    n_hosts = host_arrays.n
    cpu_col = table.cpu_rpe2[:, interval]
    mem_col = table.memory_gb[:, interval]

    # Warm-first host order; the FFD reference host is its head.
    if prev_active is None:
        scan_hosts = list(range(n_hosts))
    else:
        scan_hosts = (
            [h for h in range(n_hosts) if prev_active[h]]
            + [h for h in range(n_hosts) if not prev_active[h]]
        )
    reference = host_arrays.hosts[scan_hosts[0]]
    scores = np.maximum(
        cpu_col / reference.cpu_rpe2, mem_col / reference.memory_gb
    )
    order = np.lexsort((id_rank, -scores)).tolist()

    # Saturation skip (same optimization as the scalar engine): the
    # smallest body demand still to come, per FFD position.
    ordered_cpu = cpu_col[order]
    ordered_mem = mem_col[order]
    sufmin_cpu = np.minimum.accumulate(ordered_cpu[::-1])[::-1].tolist()
    sufmin_mem = np.minimum.accumulate(ordered_mem[::-1])[::-1].tolist()

    plan = IncrementalPlan(
        caps,
        vm_ids,
        cpu_col.tolist(),
        mem_col.tolist(),
        table.network_mbps[:, interval].tolist(),
        table.disk_mbps[:, interval].tolist(),
    )
    cpu = plan.cpu
    mem = plan.mem
    net = plan.net
    dsk = plan.dsk
    eps_cpu = caps.eps_cpu
    eps_mem = caps.eps_mem
    eps_net = caps.eps_net
    eps_dsk = caps.eps_dsk
    cap_cpu = caps.cap_cpu
    cap_mem = caps.cap_mem
    body_cpu = plan.body_cpu
    body_mem = plan.body_mem
    body_net = plan.body_net
    body_dsk = plan.body_dsk
    vm_rows_of_host = plan.vm_rows_of_host
    appearance: List[int] = []
    dead = [False] * n_hosts

    for position, row in enumerate(order):
        d_cpu = cpu[row]
        d_mem = mem[row]
        d_net = net[row]
        d_dsk = dsk[row]
        target = -1
        if prev_rows is not None:
            hint = prev_rows[row]
            if (
                body_cpu[hint] + d_cpu <= eps_cpu[hint]
                and body_mem[hint] + d_mem <= eps_mem[hint]
                and body_net[hint] + d_net <= eps_net[hint]
                and body_dsk[hint] + d_dsk <= eps_dsk[hint]
            ):
                target = hint
        if target < 0:
            min_cpu = sufmin_cpu[position]
            min_mem = sufmin_mem[position]
            for host in scan_hosts:
                if dead[host]:
                    continue
                if (
                    body_cpu[host] + d_cpu <= eps_cpu[host]
                    and body_mem[host] + d_mem <= eps_mem[host]
                    and body_net[host] + d_net <= eps_net[host]
                    and body_dsk[host] + d_dsk <= eps_dsk[host]
                ):
                    target = host
                    break
                if (
                    min_cpu > cap_cpu[host] - body_cpu[host] + _SLACK
                    or min_mem > cap_mem[host] - body_mem[host] + _SLACK
                ):
                    dead[host] = True
            if target < 0:
                raise _no_fit_error(
                    table.demand(row, interval), utilization_bound
                )
        if not vm_rows_of_host[target]:
            appearance.append(target)
        plan.assign(row, target)
    return plan, order, appearance


def _vacate_intervals_hosts(
    algorithm: "DynamicConsolidation",
    context: PlanningContext,
    host_arrays: _HostArrays,
    plan: IncrementalPlan,
    appearance: List[int],
) -> None:
    """Array-backed twin of ``DynamicConsolidation._vacate_hosts``."""
    n_hosts = host_arrays.n
    body_cpu = plan.body_cpu
    vm_rows_of_host = plan.vm_rows_of_host
    bins_list = appearance
    # numpy mirrors for vectorized source/candidate scoring; refreshed
    # only on commits (scalar element writes), so they always equal the
    # python-float ground truth exactly.
    body_cpu_np = np.array(body_cpu)
    body_mem_np = np.array(plan.body_mem)
    count_np = np.array(
        [len(rows) for rows in vm_rows_of_host], dtype=np.intp
    )
    alive_np = np.zeros(n_hosts, dtype=bool)
    apps = np.array(bins_list, dtype=np.intp)
    alive_np[apps] = True
    interval_hours = context.config.interval_hours

    for _ in range(algorithm.max_vacate_sweeps):
        changed = False
        live = [h for h in bins_list if alive_np[h]]
        n_bins = len(live)
        live_arr = np.array(live, dtype=np.intp)
        # Snapshot source order: (vm count, used cpu), appearance-stable.
        source_order = np.lexsort(
            (
                np.arange(n_bins),
                body_cpu_np[live_arr],
                count_np[live_arr],
            )
        )
        for source_pos in source_order:
            source = live[int(source_pos)]
            if not vm_rows_of_host[source] or n_bins <= 1:
                continue
            if _try_vacate_array(
                algorithm, host_arrays, plan, source,
                apps, alive_np, count_np, body_cpu_np, body_mem_np,
                interval_hours,
            ):
                changed = True
        for host in live:
            if not vm_rows_of_host[host]:
                alive_np[host] = False
        if not changed:
            break


def _try_vacate_array(
    algorithm: "DynamicConsolidation",
    host_arrays: _HostArrays,
    plan: IncrementalPlan,
    source: int,
    apps: np.ndarray,
    alive_np: np.ndarray,
    count_np: np.ndarray,
    body_cpu_np: np.ndarray,
    body_mem_np: np.ndarray,
    interval_hours: float,
) -> bool:
    """Array-backed twin of ``_try_vacate`` for one source host.

    Two outcome-identical shortcuts on the reference: the migration-cost
    gate is evaluated *before* the target search (it depends only on the
    source's VM set, and a failing attempt changes no state either way),
    and the first — largest — VM's candidate scan runs as one vectorized
    mask (its pending loads are all zero).  Everything else replays the
    reference's scalar folds move by move.
    """
    caps = host_arrays.caps
    cpu = plan.cpu
    mem = plan.mem
    net = plan.net
    dsk = plan.dsk
    move_rows = sorted(
        plan.vm_rows_of_host[source], key=cpu.__getitem__, reverse=True
    )

    if algorithm.consider_migration_cost:
        cost_wh: float = 0
        for cost in algorithm._cached_cost_many(
            [mem[row] for row in move_rows]
        ):
            cost_wh = cost_wh + cost
        benefit_wh = host_arrays.idle_watts[source] * interval_hours
        if benefit_wh <= cost_wh:
            return False

    # Candidates: every other live, non-empty bin, appearance order.
    mask = alive_np[apps] & (count_np[apps] > 0) & (apps != source)
    candidates = apps[mask]
    if candidates.size == 0:
        return False

    # Vectorized first-VM admission: pending loads are all zero for the
    # first VM, so the mask below is exactly the reference's fit checks.
    first = move_rows[0]
    fit0 = (
        (body_cpu_np[candidates] + cpu[first]
         <= caps.eps_cpu_np[candidates])
        & (body_mem_np[candidates] + mem[first]
           <= caps.eps_mem_np[candidates])
    )
    if net[first] or dsk[first]:
        body_net_np = np.array(plan.body_net)
        body_dsk_np = np.array(plan.body_dsk)
        fit0 &= (
            body_net_np[candidates] + net[first]
            <= caps.eps_net_np[candidates]
        ) & (
            body_dsk_np[candidates] + dsk[first]
            <= caps.eps_dsk_np[candidates]
        )
    if not fit0.any():
        return False

    # Fullest-first candidate order: min normalized slack, stable on
    # appearance — the reference's sorted(..., key=residual).
    residual = np.minimum(
        (caps.cap_cpu_np[candidates] - body_cpu_np[candidates])
        / caps.cap_cpu_np[candidates],
        (caps.cap_mem_np[candidates] - body_mem_np[candidates])
        / caps.cap_mem_np[candidates],
    )
    cand_order = np.lexsort((np.arange(candidates.size), residual))
    cand = candidates[cand_order].tolist()
    fit0_ordered = fit0[cand_order]

    body_cpu = plan.body_cpu
    body_mem = plan.body_mem
    body_net = plan.body_net
    body_dsk = plan.body_dsk
    eps_cpu = caps.eps_cpu
    eps_mem = caps.eps_mem
    eps_net = caps.eps_net
    eps_dsk = caps.eps_dsk
    # Pending loads per candidate host: exact left folds in move order,
    # matching the reference's per-check recomputation.
    pend_cpu: Dict[int, float] = {}
    pend_mem: Dict[int, float] = {}
    pend_net: Dict[int, float] = {}
    pend_dsk: Dict[int, float] = {}

    first_pick = int(np.argmax(fit0_ordered))
    moves: List[tuple] = [(first, cand[first_pick])]
    pend_cpu[cand[first_pick]] = cpu[first]
    pend_mem[cand[first_pick]] = mem[first]
    pend_net[cand[first_pick]] = net[first]
    pend_dsk[cand[first_pick]] = dsk[first]

    for row in move_rows[1:]:
        d_cpu = cpu[row]
        d_mem = mem[row]
        d_net = net[row]
        d_dsk = dsk[row]
        target = -1
        for host in cand:
            # Body-only prefilter: pending loads are non-negative and
            # the float fold is monotone, so failing without pending
            # implies failing with it.  Most candidates fail here with
            # one add + compare; the exact pending fold runs only on
            # prefilter survivors.
            if (
                body_cpu[host] + d_cpu <= eps_cpu[host]
                and body_mem[host] + d_mem <= eps_mem[host]
                and body_net[host] + d_net <= eps_net[host]
                and body_dsk[host] + d_dsk <= eps_dsk[host]
            ):
                if host not in pend_cpu:
                    target = host
                    break
                if (
                    body_cpu[host] + pend_cpu[host] + d_cpu
                    <= eps_cpu[host]
                    and body_mem[host] + pend_mem[host] + d_mem
                    <= eps_mem[host]
                    and body_net[host] + pend_net[host] + d_net
                    <= eps_net[host]
                    and body_dsk[host] + pend_dsk[host] + d_dsk
                    <= eps_dsk[host]
                ):
                    target = host
                    break
        if target < 0:
            return False
        moves.append((row, target))
        pend_cpu[target] = pend_cpu.get(target, 0.0) + d_cpu
        pend_mem[target] = pend_mem.get(target, 0.0) + d_mem
        pend_net[target] = pend_net.get(target, 0.0) + d_net
        pend_dsk[target] = pend_dsk.get(target, 0.0) + d_dsk

    # Commit: sequential per-move adds with the reference's re-check
    # (Bin.add validates against the *committed* state, whose folds can
    # differ from body + pending in the last ulp).
    for row, target in moves:
        d_cpu = cpu[row]
        d_mem = mem[row]
        d_net = net[row]
        d_dsk = dsk[row]
        if not (
            body_cpu[target] + d_cpu <= eps_cpu[target]
            and body_mem[target] + d_mem <= eps_mem[target]
            and body_net[target] + d_net <= eps_net[target]
            and body_dsk[target] + d_dsk <= eps_dsk[target]
        ):
            raise PlacementError(
                f"{plan.vm_ids[row]} does not fit on "
                f"{host_arrays.host_ids[target]}"
            )
        plan.assign(row, target)
        body_cpu_np[target] = body_cpu[target]
        body_mem_np[target] = body_mem[target]
        count_np[target] += 1
    plan.clear_host(source)
    body_cpu_np[source] = 0.0
    body_mem_np[source] = 0.0
    count_np[source] = 0
    return True
