"""Static consolidation (paper §2.2.1).

"Each virtual machine is sized to the expected peak usage for its
workload and virtual machines are placed on physical servers using
simple bin-packing approaches."

Static consolidation is a one-time placement for the *lifetime* of the
workload, so it must provision for the worst demand ever expected — we
operationalize "lifetime peak" as the history peak inflated by a
provisioning margin (capacity planners add headroom precisely because a
single month of history under-represents the lifetime maximum).  With a
zero margin this degenerates to vanilla semi-static, which is why the
paper's evaluation uses semi-static as the conservative baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import ConsolidationAlgorithm, PlanningContext
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import ConfigurationError
from repro.infrastructure.vm import VMDemand
from repro.placement.binpacking import pack
from repro.sizing.estimator import SizeEstimator
from repro.sizing.functions import MaxSizing

__all__ = ["StaticConsolidation"]


@dataclass
class StaticConsolidation(ConsolidationAlgorithm):
    """Lifetime-peak sizing + FFD; never re-plans."""

    name: str = "static"
    #: Headroom above the observed history peak (lifetime uncertainty).
    provisioning_margin: float = 0.25
    strategy: str = "ffd"

    def __post_init__(self) -> None:
        if self.provisioning_margin < 0:
            raise ConfigurationError(
                f"provisioning_margin must be >= 0, got "
                f"{self.provisioning_margin}"
            )

    def plan(self, context: PlanningContext) -> PlacementSchedule:
        estimator = SizeEstimator(
            sizing=MaxSizing(),
            overhead=context.config.overhead,
            network=context.config.network,
            disk=context.config.disk,
        )
        margin = 1.0 + self.provisioning_margin
        demands = [
            VMDemand(
                vm_id=demand.vm_id,
                cpu_rpe2=demand.cpu_rpe2 * margin,
                memory_gb=demand.memory_gb * margin,
                network_mbps=demand.network_mbps * margin,
                disk_mbps=demand.disk_mbps * margin,
            )
            for demand in estimator.estimate_all(context.history)
        ]
        placement = pack(
            demands,
            context.datacenter.hosts,
            utilization_bound=1.0,
            strategy=self.strategy,
            constraints=context.constraints or None,
            datacenter=context.datacenter,
        )
        return PlacementSchedule.static(
            placement, context.evaluation.duration_hours
        )
