"""Placement structures and bin-packing heuristics."""

from repro.placement.arraybins import BinArray
from repro.placement.binpacking import Bin, pack, sort_decreasing
from repro.placement.improve import improve_placement
from repro.placement.plan import Placement

__all__ = [
    "Bin",
    "BinArray",
    "Placement",
    "improve_placement",
    "pack",
    "sort_decreasing",
]
