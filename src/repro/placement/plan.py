"""Placement data structures.

A :class:`Placement` is the output of the Placement step (paper §2.1): a
mapping from VM to physical host, plus the queries the experiments need —
hosts used, VMs per host, and the migration delta between two placements
(what dynamic consolidation's Execution step would have to carry out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Mapping, Tuple

from repro.exceptions import PlacementError

__all__ = ["Placement"]


@dataclass(frozen=True)
class Placement:
    """An immutable VM → host assignment."""

    assignment: Mapping[str, str]
    _vms_by_host: Mapping[str, Tuple[str, ...]] = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        frozen = dict(self.assignment)
        by_host: Dict[str, list] = {}
        for vm_id, host_id in frozen.items():
            if not vm_id or not host_id:
                raise PlacementError(
                    "placement entries must have non-empty vm and host ids"
                )
            by_host.setdefault(host_id, []).append(vm_id)
        object.__setattr__(self, "assignment", frozen)
        object.__setattr__(
            self,
            "_vms_by_host",
            {host: tuple(vms) for host, vms in by_host.items()},
        )

    @classmethod
    def empty(cls) -> "Placement":
        return cls(assignment={})

    def __len__(self) -> int:
        return len(self.assignment)

    def __iter__(self) -> Iterator[str]:
        return iter(self.assignment)

    def __contains__(self, vm_id: object) -> bool:
        return vm_id in self.assignment

    def host_of(self, vm_id: str) -> str:
        try:
            return self.assignment[vm_id]
        except KeyError:
            raise PlacementError(f"VM {vm_id!r} is not placed") from None

    def vms_on(self, host_id: str) -> Tuple[str, ...]:
        """VMs assigned to a host (empty tuple for an unused host)."""
        return self._vms_by_host.get(host_id, ())

    @property
    def hosts_used(self) -> FrozenSet[str]:
        return frozenset(self._vms_by_host)

    @property
    def active_host_count(self) -> int:
        """Hosts with at least one VM — the paper's 'running servers'."""
        return len(self._vms_by_host)

    def migrations_from(self, previous: "Placement") -> FrozenSet[str]:
        """VMs whose host differs from ``previous`` (new VMs excluded).

        This is the work the Execution step must perform by live
        migration when moving from one dynamic-consolidation interval to
        the next.
        """
        return frozenset(
            vm_id
            for vm_id, host_id in self.assignment.items()
            if vm_id in previous.assignment
            and previous.assignment[vm_id] != host_id
        )

    def with_assignment(self, vm_id: str, host_id: str) -> "Placement":
        """Functional update: a new placement with one extra/changed VM."""
        updated = dict(self.assignment)
        updated[vm_id] = host_id
        return Placement(assignment=updated)
