"""Local-search improvement over a greedy placement.

FFD is the paper's representative placement heuristic, but production
planners in the pMapper family follow greedy construction with a
refinement pass: repeatedly try to *evacuate* the least-loaded host by
re-fitting its VMs into the remaining hosts; every successful
evacuation removes one host from the plan.  The pass is monotone (host
count never increases), capacity-safe, and constraint-aware.

This is deliberately the same move primitive dynamic consolidation uses
to power hosts off between intervals — there it is gated by migration
cost, here (plan-time, relocation during downtime) it is free.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.constraints.manager import ConstraintSet
from repro.exceptions import ConfigurationError, PlacementError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer
from repro.infrastructure.vm import VMDemand
from repro.placement.binpacking import Bin
from repro.placement.plan import Placement

__all__ = ["improve_placement"]


def improve_placement(
    placement: Placement,
    demands: Sequence[VMDemand],
    hosts: Sequence[PhysicalServer],
    *,
    utilization_bound: float = 1.0,
    constraints: Optional[ConstraintSet] = None,
    datacenter: Optional[Datacenter] = None,
    max_rounds: int = 8,
) -> Placement:
    """Evacuate under-used hosts until no further host can be freed.

    Parameters mirror :func:`repro.placement.binpacking.pack`; the input
    placement must already be feasible at the given bound (it is rebuilt
    into bins, which fails loudly otherwise).

    Note: tail pooling makes per-VM feasibility order-dependent, so the
    rebuild adds VMs largest-tail-first per host.
    """
    if max_rounds < 1:
        raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
    if constraints and datacenter is None:
        raise ConfigurationError(
            "constraints require a datacenter for topology lookups"
        )
    demand_of = {d.vm_id: d for d in demands}
    host_of = {h.host_id: h for h in hosts}
    bins: Dict[str, Bin] = {}
    assignment = dict(placement.assignment)
    for host_id in placement.hosts_used:
        host = host_of.get(host_id)
        if host is None:
            raise PlacementError(f"placement uses unknown host {host_id!r}")
        bin_ = Bin.for_host(host, utilization_bound)
        members = sorted(
            placement.vms_on(host_id),
            key=lambda v: demand_of[v].tail_cpu_rpe2,
            reverse=True,
        )
        for vm_id in members:
            bin_.add(demand_of[vm_id])
        bins[host_id] = bin_

    for _ in range(max_rounds):
        if not _evacuate_one(bins, assignment, demand_of, constraints, datacenter):
            break
    if constraints and datacenter is not None:
        constraints.validate(assignment, datacenter)
    return Placement(assignment=assignment)


def _evacuate_one(
    bins: Dict[str, Bin],
    assignment: Dict[str, str],
    demand_of: Mapping[str, VMDemand],
    constraints: Optional[ConstraintSet],
    datacenter: Optional[Datacenter],
) -> bool:
    """Try to fully evacuate one host; True if a host was freed."""
    active = [b for b in bins.values() if not b.is_empty]
    if len(active) <= 1:
        return False
    # Emptiest hosts are the cheapest wins; try them in order.
    for source in sorted(active, key=lambda b: (len(b.vm_ids), b.used_cpu)):
        moves = _plan_evacuation(
            source, active, assignment, demand_of, constraints, datacenter
        )
        if moves is None:
            continue
        for vm_id, target in moves:
            target.add(demand_of[vm_id])
            assignment[vm_id] = target.host.host_id
        del bins[source.host.host_id]
        return True
    return False


def _plan_evacuation(
    source: Bin,
    active: List[Bin],
    assignment: Mapping[str, str],
    demand_of: Mapping[str, VMDemand],
    constraints: Optional[ConstraintSet],
    datacenter: Optional[Datacenter],
) -> "Optional[List[tuple]]":
    """All-or-nothing move plan emptying ``source``, or None."""
    moves: List[tuple] = []
    pending: Dict[str, Dict[str, float]] = {}
    shadow = dict(assignment)
    candidates = sorted(
        (b for b in active if b is not source),
        key=lambda b: b.residual(),
    )
    for vm_id in sorted(
        source.vm_ids, key=lambda v: demand_of[v].cpu_rpe2, reverse=True
    ):
        demand = demand_of[vm_id]
        target = None
        for candidate in candidates:
            extra = pending.get(candidate.host.host_id)
            if not _fits(candidate, demand, extra):
                continue
            if constraints and datacenter is not None:
                if not constraints.feasible(
                    vm_id, candidate.host, shadow, datacenter
                ):
                    continue
            target = candidate
            break
        if target is None:
            return None
        moves.append((vm_id, target))
        shadow[vm_id] = target.host.host_id
        slot = pending.setdefault(
            target.host.host_id,
            {"cpu": 0.0, "memory": 0.0, "network": 0.0, "disk": 0.0,
             "tail_cpu": 0.0, "tail_memory": 0.0},
        )
        slot["cpu"] += demand.cpu_rpe2
        slot["memory"] += demand.memory_gb
        slot["network"] += demand.network_mbps
        slot["disk"] += demand.disk_mbps
        slot["tail_cpu"] = max(slot["tail_cpu"], demand.tail_cpu_rpe2)
        slot["tail_memory"] = max(slot["tail_memory"], demand.tail_memory_gb)
    return moves


def _fits(
    candidate: Bin,
    demand: VMDemand,
    pending: "Optional[Dict[str, float]]",
) -> bool:
    """Fit check including this evacuation's earlier pending moves."""
    if pending is None:
        return candidate.fits(demand)
    cpu_after = (
        candidate.body_cpu
        + pending["cpu"]
        + demand.cpu_rpe2
        + max(
            candidate.max_tail_cpu,
            pending["tail_cpu"],
            demand.tail_cpu_rpe2,
        )
    )
    memory_after = (
        candidate.body_memory
        + pending["memory"]
        + demand.memory_gb
        + max(
            candidate.max_tail_memory,
            pending["tail_memory"],
            demand.tail_memory_gb,
        )
    )
    network_after = (
        candidate.body_network + pending["network"] + demand.network_mbps
    )
    disk_after = candidate.body_disk + pending["disk"] + demand.disk_mbps
    return (
        cpu_after <= candidate.cpu_capacity + 1e-9
        and memory_after <= candidate.memory_capacity + 1e-9
        and network_after <= candidate.network_capacity + 1e-9
        and disk_after <= candidate.disk_capacity + 1e-9
    )
