"""Array-backed bin state for vectorized packing.

:class:`BinArray` is the structure-of-arrays counterpart of
:class:`~repro.placement.binpacking.Bin`: one NumPy vector per resource
dimension (capacity, accumulated body, pooled tail) across the whole
host pool, so the "does VM v fit on host h?" question is answered for
*every* host at once as a boolean mask instead of one Python call per
bin.

Float semantics are the contract: every arithmetic step mirrors the
scalar :class:`Bin` expressions operation for operation (same operand
order, same ``1e-9`` slack), so the admissibility mask equals the
vector of scalar ``fits`` answers bit for bit and the two packing
engines make identical decisions.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, PlacementError
from repro.infrastructure.server import PhysicalServer
from repro.infrastructure.vm import VMDemand

__all__ = ["BinArray"]

#: Capacity slack shared with the scalar ``Bin.fits`` comparisons.
_SLACK = 1e-9


class BinArray:
    """Packing state for a host pool, one array element per bin."""

    def __init__(
        self, hosts: Sequence[PhysicalServer], utilization_bound: float
    ) -> None:
        if not 0 < utilization_bound <= 1:
            raise ConfigurationError(
                f"utilization_bound must be in (0, 1], got {utilization_bound}"
            )
        self.hosts: List[PhysicalServer] = list(hosts)
        n = len(self.hosts)
        self.cpu_capacity = np.array(
            [h.cpu_rpe2 for h in self.hosts]
        ) * utilization_bound
        self.memory_capacity = np.array(
            [h.memory_gb for h in self.hosts]
        ) * utilization_bound
        self.network_capacity = np.array(
            [h.spec.network_mbps for h in self.hosts]
        ) * utilization_bound
        self.disk_capacity = np.array(
            [h.spec.disk_mbps for h in self.hosts]
        ) * utilization_bound
        self.body_cpu = np.zeros(n)
        self.body_memory = np.zeros(n)
        self.body_network = np.zeros(n)
        self.body_disk = np.zeros(n)
        self.max_tail_cpu = np.zeros(n)
        self.max_tail_memory = np.zeros(n)
        self.vm_count = np.zeros(n, dtype=np.intp)
        self.vm_ids: List[List[str]] = [[] for _ in range(n)]

    def __len__(self) -> int:
        return len(self.hosts)

    def fits_mask(self, demand: VMDemand) -> np.ndarray:
        """Boolean mask: would the VM fit on each bin?

        One vector expression per resource, evaluated in the same
        operand order as ``Bin.fits`` so each element equals the scalar
        answer exactly.
        """
        cpu_after = (
            self.body_cpu
            + demand.cpu_rpe2
            + np.maximum(self.max_tail_cpu, demand.tail_cpu_rpe2)
        )
        memory_after = (
            self.body_memory
            + demand.memory_gb
            + np.maximum(self.max_tail_memory, demand.tail_memory_gb)
        )
        network_after = self.body_network + demand.network_mbps
        disk_after = self.body_disk + demand.disk_mbps
        return (
            (cpu_after <= self.cpu_capacity + _SLACK)
            & (memory_after <= self.memory_capacity + _SLACK)
            & (network_after <= self.network_capacity + _SLACK)
            & (disk_after <= self.disk_capacity + _SLACK)
        )

    def fits_one(self, index: int, demand: VMDemand) -> bool:
        """Scalar fit check for a single bin (the preferred-host path)."""
        cpu_after = (
            self.body_cpu[index]
            + demand.cpu_rpe2
            + max(self.max_tail_cpu[index], demand.tail_cpu_rpe2)
        )
        memory_after = (
            self.body_memory[index]
            + demand.memory_gb
            + max(self.max_tail_memory[index], demand.tail_memory_gb)
        )
        network_after = self.body_network[index] + demand.network_mbps
        disk_after = self.body_disk[index] + demand.disk_mbps
        return bool(
            cpu_after <= self.cpu_capacity[index] + _SLACK
            and memory_after <= self.memory_capacity[index] + _SLACK
            and network_after <= self.network_capacity[index] + _SLACK
            and disk_after <= self.disk_capacity[index] + _SLACK
        )

    def residuals(self, indices: np.ndarray) -> np.ndarray:
        """Best-fit slack for the given bins: min normalized headroom.

        Mirrors ``Bin.residual`` elementwise: ``(capacity - used) /
        capacity`` per optimized dimension, reduced with ``min``.
        """
        used_cpu = self.body_cpu[indices] + self.max_tail_cpu[indices]
        used_memory = self.body_memory[indices] + self.max_tail_memory[indices]
        cpu_slack = (
            self.cpu_capacity[indices] - used_cpu
        ) / self.cpu_capacity[indices]
        memory_slack = (
            self.memory_capacity[indices] - used_memory
        ) / self.memory_capacity[indices]
        return np.minimum(cpu_slack, memory_slack)

    def add(self, index: int, demand: VMDemand) -> None:
        """Commit the VM to one bin (same accounting as ``Bin.add``)."""
        if not self.fits_one(index, demand):
            raise PlacementError(
                f"{demand.vm_id} does not fit on {self.hosts[index].host_id}"
            )
        self.body_cpu[index] += demand.cpu_rpe2
        self.body_memory[index] += demand.memory_gb
        self.body_network[index] += demand.network_mbps
        self.body_disk[index] += demand.disk_mbps
        self.max_tail_cpu[index] = max(
            self.max_tail_cpu[index], demand.tail_cpu_rpe2
        )
        self.max_tail_memory[index] = max(
            self.max_tail_memory[index], demand.tail_memory_gb
        )
        self.vm_count[index] += 1
        self.vm_ids[index].append(demand.vm_id)
