"""Multi-dimensional bin-packing heuristics for VM placement.

The paper uses First-Fit-Decreasing as the representative placement
heuristic for static and semi-static consolidation (§2.2.1), with a
utilization bound expressing the live-migration reservation (§4.3): a
bound of 0.8 leaves 20% of each host's CPU and memory unpacked.

Two pieces:

* :class:`Bin` — one host's running totals during packing, including
  PCP's *tail pooling*: per-VM bodies accumulate, but only the largest
  tail is reserved per host.
* :func:`pack` — FFD/BFD over a host list with constraint support,
  a preferred-host map (dynamic consolidation seeds it with the previous
  interval's assignment to avoid gratuitous migrations), and strict
  error reporting when a VM fits nowhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.constraints.manager import ConstraintSet
from repro.exceptions import ConfigurationError, PlacementError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer
from repro.infrastructure.vm import VMDemand
from repro.placement.plan import Placement

__all__ = ["Bin", "pack", "sort_decreasing"]


@dataclass
class Bin:
    """One host's packing state.

    Capacity is the host spec scaled by the utilization bound.  Body
    demands accumulate; tail demands pool (only the per-host maximum is
    reserved) — the PCP sizing contract.  For body-only demands the tail
    fields stay zero and the bin behaves like a plain vector bin.
    """

    host: PhysicalServer
    cpu_capacity: float
    memory_capacity: float
    network_capacity: float = float("inf")
    disk_capacity: float = float("inf")
    body_cpu: float = 0.0
    body_memory: float = 0.0
    body_network: float = 0.0
    body_disk: float = 0.0
    max_tail_cpu: float = 0.0
    max_tail_memory: float = 0.0
    vm_ids: List[str] = field(default_factory=list)

    @classmethod
    def for_host(cls, host: PhysicalServer, utilization_bound: float) -> "Bin":
        if not 0 < utilization_bound <= 1:
            raise ConfigurationError(
                f"utilization_bound must be in (0, 1], got {utilization_bound}"
            )
        return cls(
            host=host,
            cpu_capacity=host.cpu_rpe2 * utilization_bound,
            memory_capacity=host.memory_gb * utilization_bound,
            network_capacity=host.spec.network_mbps * utilization_bound,
            disk_capacity=host.spec.disk_mbps * utilization_bound,
        )

    @property
    def used_cpu(self) -> float:
        """Reserved CPU: sum of bodies plus the pooled tail."""
        return self.body_cpu + self.max_tail_cpu

    @property
    def used_memory(self) -> float:
        return self.body_memory + self.max_tail_memory

    @property
    def is_empty(self) -> bool:
        return not self.vm_ids

    def fits(self, demand: VMDemand) -> bool:
        """Would adding the VM keep every resource within capacity?

        CPU and memory are the optimized dimensions; link bandwidth is a
        feasibility constraint (paper §3.1) checked the same way.
        """
        cpu_after = (
            self.body_cpu
            + demand.cpu_rpe2
            + max(self.max_tail_cpu, demand.tail_cpu_rpe2)
        )
        memory_after = (
            self.body_memory
            + demand.memory_gb
            + max(self.max_tail_memory, demand.tail_memory_gb)
        )
        network_after = self.body_network + demand.network_mbps
        disk_after = self.body_disk + demand.disk_mbps
        return (
            cpu_after <= self.cpu_capacity + 1e-9
            and memory_after <= self.memory_capacity + 1e-9
            and network_after <= self.network_capacity + 1e-9
            and disk_after <= self.disk_capacity + 1e-9
        )

    def add(self, demand: VMDemand) -> None:
        if not self.fits(demand):
            raise PlacementError(
                f"{demand.vm_id} does not fit on {self.host.host_id}"
            )
        self.body_cpu += demand.cpu_rpe2
        self.body_memory += demand.memory_gb
        self.body_network += demand.network_mbps
        self.body_disk += demand.disk_mbps
        self.max_tail_cpu = max(self.max_tail_cpu, demand.tail_cpu_rpe2)
        self.max_tail_memory = max(self.max_tail_memory, demand.tail_memory_gb)
        self.vm_ids.append(demand.vm_id)

    def residual(self) -> float:
        """Scalar slack measure used by best-fit: min normalized headroom."""
        cpu_slack = (self.cpu_capacity - self.used_cpu) / self.cpu_capacity
        memory_slack = (
            self.memory_capacity - self.used_memory
        ) / self.memory_capacity
        return min(cpu_slack, memory_slack)


def sort_decreasing(
    demands: Sequence[VMDemand], reference: PhysicalServer
) -> List[VMDemand]:
    """FFD order: decreasing by the dominant normalized resource.

    Each VM is scored by ``max(cpu / host_cpu, memory / host_memory)``
    including its tail — the standard scalarization for vector bin
    packing, which keeps memory-heavy and CPU-heavy VMs comparable.
    Ties break on vm_id for determinism.
    """
    def key(demand: VMDemand) -> Tuple[float, str]:
        score = max(
            demand.total_cpu_rpe2 / reference.cpu_rpe2,
            demand.total_memory_gb / reference.memory_gb,
        )
        return (-score, demand.vm_id)

    return sorted(demands, key=key)


def pack(
    demands: Sequence[VMDemand],
    hosts: Sequence[PhysicalServer],
    *,
    utilization_bound: float = 1.0,
    strategy: str = "ffd",
    constraints: Optional[ConstraintSet] = None,
    datacenter: Optional[Datacenter] = None,
    preferred: Optional[Mapping[str, str]] = None,
) -> Placement:
    """Pack VM demands onto hosts; returns a validated placement.

    Parameters
    ----------
    demands:
        Sized VM demands (bodies, optionally tails for PCP pooling).
    hosts:
        Candidate hosts, in preference order — earlier hosts fill first,
        so the number of *used* hosts is what the heuristic minimizes.
    utilization_bound:
        Fraction of each host's capacity available for packing; the rest
        is the live-migration reservation (paper baseline: 0.8).
    strategy:
        ``"ffd"`` (first fit) or ``"bfd"`` (best fit = tightest residual).
    constraints / datacenter:
        Deployment constraints; ``datacenter`` is required when
        constraints are given (topology lookups).
    preferred:
        Optional VM → host_id hints tried before any other host; used by
        dynamic consolidation to keep VMs where they already run.

    Raises
    ------
    PlacementError
        If any VM fits on no host (capacity or constraints).
    ConstraintViolation
        If the greedy pass finished but a group constraint ended up
        violated (e.g. a Colocate partner could not follow).
    """
    if strategy not in ("ffd", "bfd"):
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; expected 'ffd' or 'bfd'"
        )
    if not hosts:
        raise PlacementError("no hosts to pack onto")
    if constraints and datacenter is None:
        raise ConfigurationError(
            "constraints require a datacenter for topology lookups"
        )
    seen: Dict[str, bool] = {}
    for demand in demands:
        if demand.vm_id in seen:
            raise PlacementError(f"duplicate demand for VM {demand.vm_id!r}")
        seen[demand.vm_id] = True

    bins = [Bin.for_host(host, utilization_bound) for host in hosts]
    bin_of_host = {b.host.host_id: b for b in bins}
    assignment: Dict[str, str] = {}
    ordered = sort_decreasing(demands, hosts[0])
    if constraints:
        # Constrained VMs first (stable within each group): a pinned or
        # affinity-bound VM must claim its feasible hosts before
        # unconstrained VMs fill them.
        ordered = sorted(
            ordered,
            key=lambda d: not constraints.constraints_for(d.vm_id),
        )

    for demand in ordered:
        target = _choose_bin(
            demand,
            bins,
            bin_of_host,
            assignment,
            strategy=strategy,
            constraints=constraints,
            datacenter=datacenter,
            preferred=preferred,
        )
        if target is None:
            raise PlacementError(
                f"VM {demand.vm_id} (cpu={demand.total_cpu_rpe2:.0f} RPE2, "
                f"mem={demand.total_memory_gb:.2f} GB) fits on no host at "
                f"bound {utilization_bound}"
            )
        target.add(demand)
        assignment[demand.vm_id] = target.host.host_id

    if constraints and datacenter is not None:
        constraints.validate(assignment, datacenter)
    return Placement(assignment=assignment)


def _choose_bin(
    demand: VMDemand,
    bins: Sequence[Bin],
    bin_of_host: Mapping[str, Bin],
    assignment: Mapping[str, str],
    *,
    strategy: str,
    constraints: Optional[ConstraintSet],
    datacenter: Optional[Datacenter],
    preferred: Optional[Mapping[str, str]],
) -> Optional[Bin]:
    """Pick the bin for one VM, or None if nothing admits it."""
    def admissible(candidate: Bin) -> bool:
        if not candidate.fits(demand):
            return False
        if constraints and datacenter is not None:
            return constraints.feasible(
                demand.vm_id, candidate.host, assignment, datacenter
            )
        return True

    if preferred is not None:
        hint = preferred.get(demand.vm_id)
        if hint is not None:
            hinted_bin = bin_of_host.get(hint)
            if hinted_bin is not None and admissible(hinted_bin):
                return hinted_bin

    if strategy == "ffd":
        for candidate in bins:
            if admissible(candidate):
                return candidate
        return None

    # Best fit: among open (non-empty) bins pick the tightest residual
    # after adding; open a new bin only when no open bin admits the VM.
    best: Optional[Bin] = None
    best_residual = float("inf")
    for candidate in bins:
        if candidate.is_empty or not admissible(candidate):
            continue
        residual = candidate.residual()
        if residual < best_residual:
            best, best_residual = candidate, residual
    if best is not None:
        return best
    for candidate in bins:
        if candidate.is_empty and admissible(candidate):
            return candidate
    return None
