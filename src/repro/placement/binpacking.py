"""Multi-dimensional bin-packing heuristics for VM placement.

The paper uses First-Fit-Decreasing as the representative placement
heuristic for static and semi-static consolidation (§2.2.1), with a
utilization bound expressing the live-migration reservation (§4.3): a
bound of 0.8 leaves 20% of each host's CPU and memory unpacked.

Three pieces:

* :class:`Bin` — one host's running totals during packing, including
  PCP's *tail pooling*: per-VM bodies accumulate, but only the largest
  tail is reserved per host.  This scalar path is the *reference
  implementation*: the vectorized engine is pinned to it by equivalence
  tests.
* :class:`~repro.placement.arraybins.BinArray` — the array-backed
  engine: per-resource capacity/body/tail vectors so each VM's
  admissibility is one boolean mask over all bins.
* :func:`pack` — FFD/BFD over a host list with constraint support,
  a preferred-host map (dynamic consolidation seeds it with the previous
  interval's assignment to avoid gratuitous migrations), and strict
  error reporting when a VM fits nowhere.  ``engine="auto"`` (default)
  routes through :class:`BinArray` when the host count clears the
  strategy's crossover (:data:`_AUTO_MIN_HOSTS`) and through the
  reference bin-at-a-time scan below it; ``engine="array"`` /
  ``engine="scalar"`` force a side.  All produce identical placements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.constraints.manager import ConstraintSet
from repro.exceptions import ConfigurationError, PlacementError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer
from repro.infrastructure.vm import VMDemand
from repro.placement.arraybins import BinArray
from repro.placement.plan import Placement

__all__ = ["Bin", "pack", "sort_decreasing"]

#: ``engine="auto"`` host-count crossovers, measured on the kernel
#: benchmark: below these sizes numpy's fixed per-call overhead makes
#: the vector masks slower than the scalar scan (bfd was 0.4x at 100
#: hosts).  BFD crosses later because its scalar residual scan touches
#: fewer bins per VM than FFD's first-fit probe.
_AUTO_MIN_HOSTS = {"ffd": 64, "bfd": 512}


@dataclass
class Bin:
    """One host's packing state.

    Capacity is the host spec scaled by the utilization bound.  Body
    demands accumulate; tail demands pool (only the per-host maximum is
    reserved) — the PCP sizing contract.  For body-only demands the tail
    fields stay zero and the bin behaves like a plain vector bin.
    """

    host: PhysicalServer
    cpu_capacity: float
    memory_capacity: float
    network_capacity: float = float("inf")
    disk_capacity: float = float("inf")
    body_cpu: float = 0.0
    body_memory: float = 0.0
    body_network: float = 0.0
    body_disk: float = 0.0
    max_tail_cpu: float = 0.0
    max_tail_memory: float = 0.0
    vm_ids: List[str] = field(default_factory=list)

    @classmethod
    def for_host(cls, host: PhysicalServer, utilization_bound: float) -> "Bin":
        if not 0 < utilization_bound <= 1:
            raise ConfigurationError(
                f"utilization_bound must be in (0, 1], got {utilization_bound}"
            )
        return cls(
            host=host,
            cpu_capacity=host.cpu_rpe2 * utilization_bound,
            memory_capacity=host.memory_gb * utilization_bound,
            network_capacity=host.spec.network_mbps * utilization_bound,
            disk_capacity=host.spec.disk_mbps * utilization_bound,
        )

    @property
    def used_cpu(self) -> float:
        """Reserved CPU: sum of bodies plus the pooled tail."""
        return self.body_cpu + self.max_tail_cpu

    @property
    def used_memory(self) -> float:
        return self.body_memory + self.max_tail_memory

    @property
    def is_empty(self) -> bool:
        return not self.vm_ids

    def fits(self, demand: VMDemand) -> bool:
        """Would adding the VM keep every resource within capacity?

        CPU and memory are the optimized dimensions; link bandwidth is a
        feasibility constraint (paper §3.1) checked the same way.
        """
        cpu_after = (
            self.body_cpu
            + demand.cpu_rpe2
            + max(self.max_tail_cpu, demand.tail_cpu_rpe2)
        )
        memory_after = (
            self.body_memory
            + demand.memory_gb
            + max(self.max_tail_memory, demand.tail_memory_gb)
        )
        network_after = self.body_network + demand.network_mbps
        disk_after = self.body_disk + demand.disk_mbps
        return (
            cpu_after <= self.cpu_capacity + 1e-9
            and memory_after <= self.memory_capacity + 1e-9
            and network_after <= self.network_capacity + 1e-9
            and disk_after <= self.disk_capacity + 1e-9
        )

    def add(self, demand: VMDemand) -> None:
        if not self.fits(demand):
            raise PlacementError(
                f"{demand.vm_id} does not fit on {self.host.host_id}"
            )
        self.body_cpu += demand.cpu_rpe2
        self.body_memory += demand.memory_gb
        self.body_network += demand.network_mbps
        self.body_disk += demand.disk_mbps
        self.max_tail_cpu = max(self.max_tail_cpu, demand.tail_cpu_rpe2)
        self.max_tail_memory = max(self.max_tail_memory, demand.tail_memory_gb)
        self.vm_ids.append(demand.vm_id)

    def residual(self) -> float:
        """Scalar slack measure used by best-fit: min normalized headroom."""
        cpu_slack = (self.cpu_capacity - self.used_cpu) / self.cpu_capacity
        memory_slack = (
            self.memory_capacity - self.used_memory
        ) / self.memory_capacity
        return min(cpu_slack, memory_slack)


def sort_decreasing(
    demands: Sequence[VMDemand], reference: PhysicalServer
) -> List[VMDemand]:
    """FFD order: decreasing by the dominant normalized resource.

    Each VM is scored by ``max(cpu / host_cpu, memory / host_memory)``
    including its tail — the standard scalarization for vector bin
    packing, which keeps memory-heavy and CPU-heavy VMs comparable.
    Ties break on vm_id for determinism.
    """
    def key(demand: VMDemand) -> Tuple[float, str]:
        score = max(
            demand.total_cpu_rpe2 / reference.cpu_rpe2,
            demand.total_memory_gb / reference.memory_gb,
        )
        return (-score, demand.vm_id)

    return sorted(demands, key=key)


def pack(
    demands: Sequence[VMDemand],
    hosts: Sequence[PhysicalServer],
    *,
    utilization_bound: float = 1.0,
    strategy: str = "ffd",
    constraints: Optional[ConstraintSet] = None,
    datacenter: Optional[Datacenter] = None,
    preferred: Optional[Mapping[str, str]] = None,
    engine: str = "auto",
) -> Placement:
    """Pack VM demands onto hosts; returns a validated placement.

    Parameters
    ----------
    demands:
        Sized VM demands (bodies, optionally tails for PCP pooling).
    hosts:
        Candidate hosts, in preference order — earlier hosts fill first,
        so the number of *used* hosts is what the heuristic minimizes.
    utilization_bound:
        Fraction of each host's capacity available for packing; the rest
        is the live-migration reservation (paper baseline: 0.8).
    strategy:
        ``"ffd"`` (first fit) or ``"bfd"`` (best fit = tightest residual).
    constraints / datacenter:
        Deployment constraints; ``datacenter`` is required when
        constraints are given (topology lookups).
    preferred:
        Optional VM → host_id hints tried before any other host; used by
        dynamic consolidation to keep VMs where they already run.
    engine:
        ``"array"`` evaluates admissibility as vector masks over all
        bins via :class:`BinArray`; ``"scalar"`` is the reference
        bin-at-a-time scan.  ``"auto"`` (default) picks per problem
        size: vector masks only pay off once the bin scan is long enough
        to beat numpy's per-call overhead, so auto uses the array engine
        from :data:`_AUTO_MIN_HOSTS` hosts upward (64 for ffd, 512 for
        bfd — bfd's scalar scan exits early on the residual heap less
        often, shifting its crossover) and the scalar engine below.
        Identical placements either way.

    Raises
    ------
    PlacementError
        If any VM fits on no host (capacity or constraints).
    ConstraintViolation
        If the greedy pass finished but a group constraint ended up
        violated (e.g. a Colocate partner could not follow).
    """
    if strategy not in ("ffd", "bfd"):
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; expected 'ffd' or 'bfd'"
        )
    if engine not in ("auto", "array", "scalar"):
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected 'auto', 'array' or "
            "'scalar'"
        )
    if not hosts:
        raise PlacementError("no hosts to pack onto")
    if engine == "auto":
        engine = (
            "array" if len(hosts) >= _AUTO_MIN_HOSTS[strategy] else "scalar"
        )
    if constraints and datacenter is None:
        raise ConfigurationError(
            "constraints require a datacenter for topology lookups"
        )
    seen: Set[str] = set()
    for demand in demands:
        if demand.vm_id in seen:
            raise PlacementError(f"duplicate demand for VM {demand.vm_id!r}")
        seen.add(demand.vm_id)

    ordered = sort_decreasing(demands, hosts[0])
    if constraints:
        # Constrained VMs first (stable within each group): a pinned or
        # affinity-bound VM must claim its feasible hosts before
        # unconstrained VMs fill them.
        ordered = sorted(
            ordered,
            key=lambda d: not constraints.constraints_for(d.vm_id),
        )

    if engine == "array":
        assignment = _pack_array(
            ordered,
            hosts,
            utilization_bound,
            strategy=strategy,
            constraints=constraints,
            datacenter=datacenter,
            preferred=preferred,
        )
    else:
        assignment = _pack_scalar(
            ordered,
            hosts,
            utilization_bound,
            strategy=strategy,
            constraints=constraints,
            datacenter=datacenter,
            preferred=preferred,
        )

    if constraints and datacenter is not None:
        constraints.validate(assignment, datacenter)
    return Placement(assignment=assignment)


def _no_fit_error(
    demand: VMDemand, utilization_bound: float
) -> PlacementError:
    return PlacementError(
        f"VM {demand.vm_id} (cpu={demand.total_cpu_rpe2:.0f} RPE2, "
        f"mem={demand.total_memory_gb:.2f} GB) fits on no host at "
        f"bound {utilization_bound}"
    )


def _suffix_min_bodies(
    ordered: Sequence[VMDemand],
) -> Tuple[List[float], List[float]]:
    """Per position, the smallest body CPU/memory among demands[i:].

    A bin whose remaining capacity (in either optimized dimension)
    cannot even cover the smallest *future* body demand can never admit
    anything again — the FFD scan drops it permanently.
    """
    n = len(ordered)
    min_cpu = [0.0] * n
    min_memory = [0.0] * n
    running_cpu = float("inf")
    running_memory = float("inf")
    for i in range(n - 1, -1, -1):
        running_cpu = min(running_cpu, ordered[i].cpu_rpe2)
        running_memory = min(running_memory, ordered[i].memory_gb)
        min_cpu[i] = running_cpu
        min_memory[i] = running_memory
    return min_cpu, min_memory


def _pack_scalar(
    ordered: Sequence[VMDemand],
    hosts: Sequence[PhysicalServer],
    utilization_bound: float,
    *,
    strategy: str,
    constraints: Optional[ConstraintSet],
    datacenter: Optional[Datacenter],
    preferred: Optional[Mapping[str, str]],
) -> Dict[str, str]:
    """Reference engine: one ``Bin.fits`` call per (VM, candidate)."""
    bins = [Bin.for_host(host, utilization_bound) for host in hosts]
    bin_of_host = {b.host.host_id: b for b in bins}
    assignment: Dict[str, str] = {}
    suffix_min_cpu, suffix_min_memory = _suffix_min_bodies(ordered)
    scan_bins = list(bins)

    for position, demand in enumerate(ordered):
        if strategy == "ffd":
            # Drop permanently-saturated bins: remaining capacity below
            # the smallest body demand still to come means the bin can
            # never pass another fits() check.  Purely an optimization —
            # a dropped bin would have failed every future scan anyway.
            scan_bins = [
                b
                for b in scan_bins
                if not _is_saturated(
                    b,
                    suffix_min_cpu[position],
                    suffix_min_memory[position],
                )
            ]
        target = _choose_bin(
            demand,
            scan_bins if strategy == "ffd" else bins,
            bin_of_host,
            assignment,
            strategy=strategy,
            constraints=constraints,
            datacenter=datacenter,
            preferred=preferred,
        )
        if target is None:
            raise _no_fit_error(demand, utilization_bound)
        target.add(demand)
        assignment[demand.vm_id] = target.host.host_id
    return assignment


def _is_saturated(
    candidate: Bin, min_future_cpu: float, min_future_memory: float
) -> bool:
    """Can the bin never admit any remaining demand on capacity alone?"""
    remaining_cpu = candidate.cpu_capacity - candidate.used_cpu
    remaining_memory = candidate.memory_capacity - candidate.used_memory
    return (
        min_future_cpu > remaining_cpu + 1e-9
        or min_future_memory > remaining_memory + 1e-9
    )


def _pack_array(
    ordered: Sequence[VMDemand],
    hosts: Sequence[PhysicalServer],
    utilization_bound: float,
    *,
    strategy: str,
    constraints: Optional[ConstraintSet],
    datacenter: Optional[Datacenter],
    preferred: Optional[Mapping[str, str]],
) -> Dict[str, str]:
    """Vectorized engine: admissibility as one mask over all bins.

    Decision order mirrors the scalar scan exactly: FFD takes the first
    set bit (``argmax`` of the mask), BFD the first minimum residual
    among open admissible bins; constraint hooks run only on the masked
    candidate set, in the same order the scalar engine would have
    consulted them.
    """
    bins = BinArray(hosts, utilization_bound)
    index_of_host = {h.host_id: i for i, h in enumerate(bins.hosts)}
    assignment: Dict[str, str] = {}

    def constraint_ok(vm_id: str, index: int) -> bool:
        if constraints and datacenter is not None:
            return constraints.feasible(
                vm_id, bins.hosts[index], assignment, datacenter
            )
        return True

    for demand in ordered:
        target = _choose_bin_array(
            demand, bins, index_of_host, constraint_ok,
            strategy=strategy, preferred=preferred,
        )
        if target is None:
            raise _no_fit_error(demand, utilization_bound)
        bins.add(target, demand)
        assignment[demand.vm_id] = bins.hosts[target].host_id
    return assignment


def _choose_bin_array(
    demand: VMDemand,
    bins: BinArray,
    index_of_host: Mapping[str, int],
    constraint_ok,
    *,
    strategy: str,
    preferred: Optional[Mapping[str, str]],
) -> Optional[int]:
    """Pick the bin index for one VM, or None if nothing admits it."""
    if preferred is not None:
        hint = preferred.get(demand.vm_id)
        if hint is not None:
            hinted = index_of_host.get(hint)
            if (
                hinted is not None
                and bins.fits_one(hinted, demand)
                and constraint_ok(demand.vm_id, hinted)
            ):
                return hinted

    mask = bins.fits_mask(demand)
    if strategy == "ffd":
        first = int(np.argmax(mask))
        if not mask[first]:
            return None
        if constraint_ok(demand.vm_id, first):
            return first
        for index in np.flatnonzero(mask):
            index = int(index)
            if index == first:
                continue
            if constraint_ok(demand.vm_id, index):
                return index
        return None

    # Best fit: among open (non-empty) admissible bins pick the
    # tightest residual; open a new bin only when none admits the VM.
    open_candidates = np.flatnonzero(mask & (bins.vm_count > 0))
    if open_candidates.size:
        residuals = bins.residuals(open_candidates)
        # Stable residual order keeps the scalar tie-break: the first
        # bin (lowest index) among equal residuals wins.
        for pick in open_candidates[np.argsort(residuals, kind="stable")]:
            if constraint_ok(demand.vm_id, int(pick)):
                return int(pick)
    for index in np.flatnonzero(mask & (bins.vm_count == 0)):
        if constraint_ok(demand.vm_id, int(index)):
            return int(index)
    return None


def _choose_bin(
    demand: VMDemand,
    bins: Sequence[Bin],
    bin_of_host: Mapping[str, Bin],
    assignment: Mapping[str, str],
    *,
    strategy: str,
    constraints: Optional[ConstraintSet],
    datacenter: Optional[Datacenter],
    preferred: Optional[Mapping[str, str]],
) -> Optional[Bin]:
    """Pick the bin for one VM, or None if nothing admits it."""
    def admissible(candidate: Bin) -> bool:
        if not candidate.fits(demand):
            return False
        if constraints and datacenter is not None:
            return constraints.feasible(
                demand.vm_id, candidate.host, assignment, datacenter
            )
        return True

    if preferred is not None:
        hint = preferred.get(demand.vm_id)
        if hint is not None:
            hinted_bin = bin_of_host.get(hint)
            if hinted_bin is not None and admissible(hinted_bin):
                return hinted_bin

    if strategy == "ffd":
        for candidate in bins:
            if admissible(candidate):
                return candidate
        return None

    # Best fit: among open (non-empty) bins pick the tightest residual
    # after adding; open a new bin only when no open bin admits the VM.
    best: Optional[Bin] = None
    best_residual = float("inf")
    for candidate in bins:
        if candidate.is_empty or not admissible(candidate):
            continue
        residual = candidate.residual()
        if residual < best_residual:
            best, best_residual = candidate, residual
    if best is not None:
        return best
    for candidate in bins:
        if candidate.is_empty and admissible(candidate):
            return candidate
    return None
