"""Emulator accuracy verification (paper §5.2).

"We have verified the accuracy of the emulator using two synthetic
workloads RuBIS and daxpy.  For verification, we created a resource
model for the workload ... We also implemented a micro-benchmark that
can use either a specified amount of memory or consume a specific
number of cores.  Given the resource consumption in a trace, we run the
workload at the appropriate intensity ... We observed that the 99
percentile error bound of our emulator is 5% for RuBIS and 2% for
daxpy."

The harness rebuilds that methodology against a testbed *simulator*:

1. a :class:`WorkloadResourceModel` maps workload intensity (RuBiS
   clients, daxpy vector length) to CPU/memory consumption,
2. the driver inverts the model to pick the intensity whose consumption
   best meets each trace point (integer intensities quantize — a real
   error source), tops up the remainder with the micro-benchmark, and
   adds the testbed's control/measurement noise,
3. the *emulator's prediction* for the same point is the trace value
   itself (the emulator assumes demand lands as specified),
4. the per-point relative error distribution's 99th percentile is the
   paper's accuracy metric.

Interactive workloads (RuBiS) control resources loosely — client count
is integral and response is noisy — so their error bound is wider than
the numeric kernel's (daxpy), reproducing the paper's 5% vs 2% split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "WorkloadResourceModel",
    "RUBIS_MODEL",
    "DAXPY_MODEL",
    "VerificationReport",
    "verify_emulator_accuracy",
]


@dataclass(frozen=True)
class WorkloadResourceModel:
    """Intensity → resource consumption model for one benchmark.

    ``cpu = cpu_per_unit * intensity ** cpu_exponent`` (fraction of the
    testbed host), memory analogous.  ``integral_intensity`` marks
    workloads whose intensity knob is discrete (client counts);
    ``control_noise_sigma`` is the run-to-run variation of achieved
    consumption at a fixed intensity.
    """

    name: str
    cpu_per_unit: float
    cpu_exponent: float
    memory_per_unit: float
    memory_exponent: float
    integral_intensity: bool
    control_noise_sigma: float
    max_intensity: float

    def __post_init__(self) -> None:
        if self.cpu_per_unit <= 0 or self.memory_per_unit <= 0:
            raise ConfigurationError("per-unit consumptions must be > 0")
        if self.cpu_exponent <= 0 or self.memory_exponent <= 0:
            raise ConfigurationError("exponents must be > 0")
        if self.control_noise_sigma < 0:
            raise ConfigurationError("control_noise_sigma must be >= 0")
        if self.max_intensity <= 0:
            raise ConfigurationError("max_intensity must be > 0")

    def cpu_at(self, intensity: float) -> float:
        return self.cpu_per_unit * intensity**self.cpu_exponent

    def memory_at(self, intensity: float) -> float:
        return self.memory_per_unit * intensity**self.memory_exponent

    def intensity_for_cpu(self, cpu_fraction: float) -> float:
        """Invert the CPU curve; quantizes for integral workloads."""
        if cpu_fraction < 0:
            raise ConfigurationError("cpu_fraction must be >= 0")
        raw = (cpu_fraction / self.cpu_per_unit) ** (1.0 / self.cpu_exponent)
        raw = min(raw, self.max_intensity)
        if self.integral_intensity:
            return float(round(raw))
        return float(raw)


#: RuBiS auction site: integral client counts, noisy interactive load.
RUBIS_MODEL = WorkloadResourceModel(
    name="rubis",
    cpu_per_unit=0.012,
    cpu_exponent=1.05,
    memory_per_unit=0.02,
    memory_exponent=0.6,
    integral_intensity=True,
    control_noise_sigma=0.013,
    max_intensity=120.0,
)

#: daxpy numeric kernel: continuously tunable, very repeatable.
DAXPY_MODEL = WorkloadResourceModel(
    name="daxpy",
    cpu_per_unit=0.01,
    cpu_exponent=1.0,
    memory_per_unit=0.008,
    memory_exponent=1.0,
    integral_intensity=False,
    control_noise_sigma=0.005,
    max_intensity=150.0,
)


@dataclass(frozen=True)
class VerificationReport:
    """Error distribution between emulator prediction and testbed run."""

    workload: str
    n_points: int
    mean_error: float
    p95_error: float
    p99_error: float
    max_error: float

    def within(self, bound: float) -> bool:
        """The paper's criterion: p99 relative error within ``bound``."""
        return self.p99_error <= bound


def _run_testbed_point(
    model: WorkloadResourceModel,
    requested_cpu: float,
    rng: np.random.Generator,
) -> float:
    """Achieved CPU for one trace point on the simulated testbed.

    The workload runs at the inverted intensity; the micro-benchmark
    tops up (or the driver throttles) the remainder with its own, finer
    control error; measurement noise rides on top.
    """
    intensity = model.intensity_for_cpu(requested_cpu)
    workload_cpu = model.cpu_at(intensity)
    # The micro-benchmark fills the quantization gap; as a closed-loop
    # throttling driver its control error scales with the target.
    gap = requested_cpu - workload_cpu
    micro_cpu = 0.0
    if abs(gap) > 1e-9:
        micro_cpu = gap + rng.normal(0.0, 0.004) * requested_cpu
    achieved = workload_cpu * (
        1.0 + rng.normal(0.0, model.control_noise_sigma)
    ) + micro_cpu
    return float(np.clip(achieved, 0.0, 1.0))


def verify_emulator_accuracy(
    model: WorkloadResourceModel,
    *,
    n_points: int = 2000,
    seed: int = 11,
    cpu_range: Tuple[float, float] = (0.05, 0.9),
) -> VerificationReport:
    """Replay a random trace through the testbed and measure error.

    Mirrors the paper's verification: the emulator's prediction for a
    point is the trace value; the testbed's achieved value differs by
    quantization + control + measurement noise.  Errors are relative to
    the requested value.
    """
    if n_points <= 0:
        raise ConfigurationError(f"n_points must be > 0, got {n_points}")
    low, high = cpu_range
    if not 0 <= low < high <= 1:
        raise ConfigurationError(f"invalid cpu_range {cpu_range}")
    rng = np.random.default_rng(seed)
    requested = rng.uniform(low, high, size=n_points)
    achieved = np.array(
        [_run_testbed_point(model, value, rng) for value in requested]
    )
    errors = np.abs(achieved - requested) / requested
    return VerificationReport(
        workload=model.name,
        n_points=n_points,
        mean_error=float(errors.mean()),
        p95_error=float(np.percentile(errors, 95)),
        p99_error=float(np.percentile(errors, 99)),
        max_error=float(errors.max()),
    )
