"""The trace-replay consolidation emulator."""

from repro.emulator.emulator import ConsolidationEmulator
from repro.emulator.reference import ReferenceConsolidationEmulator
from repro.emulator.results import EmulationResult
from repro.emulator.schedule import PlacementSchedule, ScheduledPlacement
from repro.emulator.verification import (
    DAXPY_MODEL,
    RUBIS_MODEL,
    VerificationReport,
    WorkloadResourceModel,
    verify_emulator_accuracy,
)

__all__ = [
    "ConsolidationEmulator",
    "ReferenceConsolidationEmulator",
    "DAXPY_MODEL",
    "RUBIS_MODEL",
    "VerificationReport",
    "WorkloadResourceModel",
    "verify_emulator_accuracy",
    "EmulationResult",
    "PlacementSchedule",
    "ScheduledPlacement",
]
