"""The consolidation emulator (paper §5.2).

"The emulator uses as input a set of resource usage traces for each
physical server and returns consolidation statistics for the server ...
The emulator captures the impact of virtualization overhead as well as
memory savings due to deduplication in a configurable fashion."

:class:`ConsolidationEmulator` replays an evaluation-window trace set
against a :class:`~repro.emulator.schedule.PlacementSchedule`:

1. for every schedule segment, each host's actual CPU/memory demand per
   hour is the sum of its assigned VMs' traces, adjusted by the
   configured virtualization overhead and dedup model,
2. a host is *active* in an hour iff it has at least one VM,
3. active hosts draw power per their linear power model; inactive hosts
   are powered off (the dynamic-consolidation lever),
4. demand is deliberately not capped at capacity — the overshoot is the
   contention the paper measures in Figs. 8/9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.emulator.results import EmulationResult
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import EmulationError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.power import LinearPowerModel
from repro.infrastructure.server import PhysicalServer
from repro.numerics import approx_ne
from repro.sizing.estimator import VirtualizationOverhead
from repro.workloads.trace import TraceSet

__all__ = ["ConsolidationEmulator"]

#: Fallback power curve for hosts without a catalog model attached.
_DEFAULT_POWER = LinearPowerModel(idle_watts=160.0, peak_watts=400.0)


@dataclass
class ConsolidationEmulator:
    """Replays traces against placement schedules for one datacenter.

    Parameters
    ----------
    trace_set:
        The *evaluation-window* traces (hour 0 of the traces is hour 0
        of every schedule passed to :meth:`evaluate`).
    datacenter:
        The target host pool placements refer to.
    overhead:
        Virtualization overhead / dedup applied to actual demand — the
        emulator's configurable overhead model.
    """

    trace_set: TraceSet
    datacenter: Datacenter
    overhead: VirtualizationOverhead = field(
        default_factory=VirtualizationOverhead
    )

    def __post_init__(self) -> None:
        self._cpu = {
            trace.vm_id: trace.cpu_rpe2 * (1.0 + self.overhead.cpu_overhead_frac)
            for trace in self.trace_set
        }
        self._memory = {
            trace.vm_id: trace.memory_gb.values
            * (1.0 - self.overhead.dedup_savings_frac)
            + self.overhead.memory_overhead_gb
            for trace in self.trace_set
        }
        self._n_hours = self.trace_set.n_points
        if approx_ne(self.trace_set.interval_hours, 1.0):
            raise EmulationError(
                "emulator expects hourly traces, got "
                f"{self.trace_set.interval_hours}h samples"
            )

    def evaluate(
        self, schedule: PlacementSchedule, *, scheme: str = "unnamed"
    ) -> EmulationResult:
        """Replay the trace set against one schedule."""
        if schedule.start_hour != 0:
            raise EmulationError(
                f"schedule must start at hour 0, got {schedule.start_hour}"
            )
        if schedule.end_hour > self._n_hours:
            raise EmulationError(
                f"schedule ends at hour {schedule.end_hour} but traces cover "
                f"only {self._n_hours} hours"
            )

        used_hosts = self._used_hosts(schedule)
        host_index = {h.host_id: i for i, h in enumerate(used_hosts)}
        n_hosts = len(used_hosts)
        n_hours = int(schedule.end_hour)

        cpu_demand = np.zeros((n_hosts, n_hours))
        memory_demand = np.zeros((n_hosts, n_hours))
        active = np.zeros((n_hosts, n_hours), dtype=bool)

        for segment in schedule:
            start = int(segment.start_hour)
            end = int(segment.end_hour)
            for vm_id, host_id in segment.placement.assignment.items():
                row = host_index[host_id]
                cpu_trace = self._cpu.get(vm_id)
                if cpu_trace is None:
                    raise EmulationError(
                        f"placement refers to unknown VM {vm_id!r}"
                    )
                cpu_demand[row, start:end] += cpu_trace[start:end]
                memory_demand[row, start:end] += self._memory[vm_id][start:end]
                active[row, start:end] = True

        cpu_capacity = np.array([h.cpu_rpe2 for h in used_hosts])
        memory_capacity = np.array([h.memory_gb for h in used_hosts])
        power = self._power_matrix(used_hosts, cpu_demand, cpu_capacity, active)

        return EmulationResult(
            scheme=scheme,
            workload=self.trace_set.name,
            host_ids=tuple(h.host_id for h in used_hosts),
            cpu_capacity=cpu_capacity,
            memory_capacity=memory_capacity,
            cpu_demand=cpu_demand,
            memory_demand=memory_demand,
            active=active,
            power_watts=power,
            schedule=schedule,
        )

    def _used_hosts(
        self, schedule: PlacementSchedule
    ) -> List[PhysicalServer]:
        """All hosts any segment uses, in datacenter order."""
        used: Dict[str, None] = {}
        for segment in schedule:
            for host_id in segment.placement.hosts_used:
                if host_id not in self.datacenter:
                    raise EmulationError(
                        f"placement refers to unknown host {host_id!r}"
                    )
                used.setdefault(host_id, None)
        # An empty schedule is legal: zero hosts, zero cost, zero
        # contention (the metamorphic baseline the tests pin down).
        return [h for h in self.datacenter if h.host_id in used]

    @staticmethod
    def _power_matrix(
        hosts: List[PhysicalServer],
        cpu_demand: np.ndarray,
        cpu_capacity: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        utilization = np.clip(cpu_demand / cpu_capacity[:, None], 0.0, 1.0)
        power = np.zeros_like(cpu_demand)
        for row, host in enumerate(hosts):
            model = (
                LinearPowerModel.from_model(host.model)
                if host.model is not None
                else _DEFAULT_POWER
            )
            power[row] = model.power_watts_array(utilization[row])
        return np.where(active, power, 0.0)
