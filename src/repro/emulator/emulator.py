"""The consolidation emulator (paper §5.2), vectorized.

"The emulator uses as input a set of resource usage traces for each
physical server and returns consolidation statistics for the server ...
The emulator captures the impact of virtualization overhead as well as
memory savings due to deduplication in a configurable fashion."

:class:`ConsolidationEmulator` replays an evaluation-window trace set
against a :class:`~repro.emulator.schedule.PlacementSchedule`:

1. for every schedule segment, each host's actual CPU/memory demand per
   hour is the sum of its assigned VMs' traces, adjusted by the
   configured virtualization overhead and dedup model,
2. a host is *active* in an hour iff it has at least one VM,
3. active hosts draw power per their linear power model; inactive hosts
   are powered off (the dynamic-consolidation lever),
4. demand is deliberately not capped at capacity — the overshoot is the
   contention the paper measures in Figs. 8/9.

The hot path is columnar: adjusted demand lives in two read-mostly
``(n_vms, n_hours)`` matrices derived from the trace set's
:class:`~repro.workloads.store.TraceStore`, each segment's assignment is
resolved to integer (VM row → host row) index arrays once, and demand
lands on host rows via a scatter-add over those indices.  Results are
bit-identical to :class:`~repro.emulator.reference
.ReferenceConsolidationEmulator` (the retained scalar implementation):
the scatter accumulates contributions per host row in exactly the
left-to-right assignment order the scalar loop used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.emulator.results import EmulationResult
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import EmulationError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.power import LinearPowerModel
from repro.infrastructure.server import PhysicalServer
from repro.numerics import approx_ne
from repro.sizing.estimator import VirtualizationOverhead
from repro.workloads.trace import TraceSet

__all__ = ["ConsolidationEmulator"]

#: Fallback power curve for hosts without a catalog model attached.
_DEFAULT_POWER = LinearPowerModel(idle_watts=160.0, peak_watts=400.0)

#: Segment width (hours) below which the bincount scatter beats per-VM
#: row adds.  Narrow segments (dynamic consolidation's intervals) are
#: dominated by per-call overhead, wide ones by per-element throughput;
#: the crossover sits around a few hundred columns on current NumPy.
_SCATTER_MAX_WIDTH = 256


def _scatter_add_rows(
    out: np.ndarray,
    host_rows: np.ndarray,
    values: np.ndarray,
    start: int,
    end: int,
) -> None:
    """``out[host_rows[k], start:end] += values[k]`` for every k, in order.

    Accumulation per destination row is a strict left fold in ``k``
    order — the same float-addition sequence as the scalar reference —
    for both strategies below:

    * narrow segments: one ``np.bincount`` over linearized indices
      (bincount walks its input sequentially, so duplicate destinations
      accumulate in appearance order),
    * wide segments: per-row in-place adds, which amortize their call
      overhead over many columns.
    """
    width = end - start
    if host_rows.size == 0:
        return
    if width <= _SCATTER_MAX_WIDTH:
        n_rows = out.shape[0]
        linear = (
            host_rows[:, np.newaxis] * width + np.arange(width)[np.newaxis, :]
        )
        summed = np.bincount(
            linear.ravel(), weights=values.ravel(), minlength=n_rows * width
        )
        out[:, start:end] += summed.reshape(n_rows, width)
    else:
        for k, row in enumerate(host_rows):
            out[row, start:end] += values[k]


@dataclass
class ConsolidationEmulator:
    """Replays traces against placement schedules for one datacenter.

    Parameters
    ----------
    trace_set:
        The *evaluation-window* traces (hour 0 of the traces is hour 0
        of every schedule passed to :meth:`evaluate`).
    datacenter:
        The target host pool placements refer to.
    overhead:
        Virtualization overhead / dedup applied to actual demand — the
        emulator's configurable overhead model.
    """

    trace_set: TraceSet
    datacenter: Datacenter
    overhead: VirtualizationOverhead = field(
        default_factory=VirtualizationOverhead
    )

    def __post_init__(self) -> None:
        store = self.trace_set.store
        # Adjusted columnar demand: same elementwise operations as the
        # per-trace scalar path, evaluated as two whole-matrix ops.
        self._cpu_matrix = store.cpu_rpe2 * (
            1.0 + self.overhead.cpu_overhead_frac
        )
        self._memory_matrix = (
            store.memory_gb * (1.0 - self.overhead.dedup_savings_frac)
            + self.overhead.memory_overhead_gb
        )
        self._vm_row = {vm_id: i for i, vm_id in enumerate(store.vm_ids)}
        self._n_hours = self.trace_set.n_points
        if approx_ne(self.trace_set.interval_hours, 1.0):
            raise EmulationError(
                "emulator expects hourly traces, got "
                f"{self.trace_set.interval_hours}h samples"
            )

    def evaluate(
        self, schedule: PlacementSchedule, *, scheme: str = "unnamed"
    ) -> EmulationResult:
        """Replay the trace set against one schedule."""
        if schedule.start_hour != 0:
            raise EmulationError(
                f"schedule must start at hour 0, got {schedule.start_hour}"
            )
        if schedule.end_hour > self._n_hours:
            raise EmulationError(
                f"schedule ends at hour {schedule.end_hour} but traces cover "
                f"only {self._n_hours} hours"
            )

        used_hosts = self._used_hosts(schedule)
        host_index = {h.host_id: i for i, h in enumerate(used_hosts)}
        n_hosts = len(used_hosts)
        n_hours = int(schedule.end_hour)

        cpu_demand = np.zeros((n_hosts, n_hours))
        memory_demand = np.zeros((n_hosts, n_hours))
        active = np.zeros((n_hosts, n_hours), dtype=bool)

        for segment in schedule:
            start = int(segment.start_hour)
            end = int(segment.end_hour)
            vm_rows, host_rows = self._segment_rows(
                segment.placement.assignment, host_index
            )
            if vm_rows.size == 0:
                continue
            cpu_values = self._cpu_matrix[vm_rows, start:end]
            memory_values = self._memory_matrix[vm_rows, start:end]
            _scatter_add_rows(cpu_demand, host_rows, cpu_values, start, end)
            _scatter_add_rows(
                memory_demand, host_rows, memory_values, start, end
            )
            active[host_rows, start:end] = True

        cpu_capacity = np.array([h.cpu_rpe2 for h in used_hosts])
        memory_capacity = np.array([h.memory_gb for h in used_hosts])
        power = self._power_matrix(used_hosts, cpu_demand, cpu_capacity, active)

        return EmulationResult(
            scheme=scheme,
            workload=self.trace_set.name,
            host_ids=tuple(h.host_id for h in used_hosts),
            cpu_capacity=cpu_capacity,
            memory_capacity=memory_capacity,
            cpu_demand=cpu_demand,
            memory_demand=memory_demand,
            active=active,
            power_watts=power,
            schedule=schedule,
        )

    def _segment_rows(
        self, assignment: "Dict[str, str]", host_index: Dict[str, int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Resolve one segment's assignment to (VM row, host row) arrays.

        Array order is the assignment's iteration order, which fixes the
        per-host accumulation order of the scatter-add.
        """
        n = len(assignment)
        vm_rows = np.empty(n, dtype=np.intp)
        host_rows = np.empty(n, dtype=np.intp)
        vm_row = self._vm_row
        for k, (vm_id, host_id) in enumerate(assignment.items()):
            row = vm_row.get(vm_id)
            if row is None:
                raise EmulationError(
                    f"placement refers to unknown VM {vm_id!r}"
                )
            vm_rows[k] = row
            host_rows[k] = host_index[host_id]
        return vm_rows, host_rows

    def _used_hosts(
        self, schedule: PlacementSchedule
    ) -> List[PhysicalServer]:
        """All hosts any segment uses, in datacenter order."""
        used: Dict[str, None] = {}
        for segment in schedule:
            for host_id in segment.placement.hosts_used:
                if host_id not in self.datacenter:
                    raise EmulationError(
                        f"placement refers to unknown host {host_id!r}"
                    )
                used.setdefault(host_id, None)
        # An empty schedule is legal: zero hosts, zero cost, zero
        # contention (the metamorphic baseline the tests pin down).
        return [h for h in self.datacenter if h.host_id in used]

    @staticmethod
    def _power_matrix(
        hosts: List[PhysicalServer],
        cpu_demand: np.ndarray,
        cpu_capacity: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        """Power per host-hour: one broadcast per distinct power curve.

        Hosts sharing a :class:`LinearPowerModel` are grouped so a pool
        of N hosts with a handful of catalog models costs a handful of
        array ops instead of one Python call per host.
        """
        utilization = np.clip(cpu_demand / cpu_capacity[:, None], 0.0, 1.0)
        power = np.zeros_like(cpu_demand)
        groups: Dict[Tuple[float, float], List[int]] = {}
        for row, host in enumerate(hosts):
            model = (
                LinearPowerModel.from_model(host.model)
                if host.model is not None
                else _DEFAULT_POWER
            )
            groups.setdefault(
                (model.idle_watts, model.peak_watts), []
            ).append(row)
        for (idle_watts, peak_watts), rows in groups.items():
            power[rows] = idle_watts + (peak_watts - idle_watts) * utilization[rows]
        return np.where(active, power, 0.0)
