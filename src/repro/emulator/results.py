"""Emulation results: the consolidation statistics behind Figs. 7-12.

:class:`EmulationResult` holds the per-host, per-hour demand and activity
matrices produced by replaying traces against a placement schedule, plus
derived metrics:

* provisioned server count and space cost (Fig. 7 left),
* energy and power cost (Fig. 7 right),
* contention time fraction and magnitude distribution (Figs. 8, 9),
* per-server average / peak utilization CDFs (Figs. 10, 11),
* active-server fraction distribution (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import EmulationError
from repro.infrastructure.costs import PowerCostModel, SpaceCostModel

__all__ = ["EmulationResult"]


@dataclass(frozen=True)
class EmulationResult:
    """Replay output for one (workload, consolidation scheme) pair.

    All matrices are shaped ``(n_hosts, n_hours)`` and cover only hosts
    the schedule ever used (the provisioned pool).

    Attributes
    ----------
    cpu_demand / memory_demand:
        Actual aggregate demand landed on each host per hour, with
        virtualization overhead applied.  Demand is *not* capped at
        capacity — the excess is the contention signal.
    active:
        Whether the host had at least one VM that hour (powered on).
    power_watts:
        Power draw per host-hour (0 when inactive).
    """

    scheme: str
    workload: str
    host_ids: Tuple[str, ...]
    cpu_capacity: np.ndarray
    memory_capacity: np.ndarray
    cpu_demand: np.ndarray
    memory_demand: np.ndarray
    active: np.ndarray
    power_watts: np.ndarray
    schedule: PlacementSchedule

    def __post_init__(self) -> None:
        n_hosts = len(self.host_ids)
        for name in ("cpu_demand", "memory_demand", "active", "power_watts"):
            matrix = getattr(self, name)
            if matrix.shape[0] != n_hosts:
                raise EmulationError(
                    f"{name} has {matrix.shape[0]} rows for {n_hosts} hosts"
                )
            if matrix.shape != self.cpu_demand.shape:
                raise EmulationError(f"{name} shape mismatch")
        for name in ("cpu_capacity", "memory_capacity"):
            vector = getattr(self, name)
            if vector.shape != (n_hosts,):
                raise EmulationError(f"{name} must be ({n_hosts},)")

    # ------------------------------------------------------------------
    # Space / hardware (Fig. 7 left)

    @property
    def n_hours(self) -> int:
        return int(self.cpu_demand.shape[1])

    @property
    def provisioned_servers(self) -> int:
        """Hosts that must physically exist: every host the plan touches."""
        return len(self.host_ids)

    def space_cost(self, model: SpaceCostModel = SpaceCostModel()) -> float:
        return model.cost(self.provisioned_servers)

    # ------------------------------------------------------------------
    # Power (Fig. 7 right)

    @property
    def energy_kwh(self) -> float:
        """IT energy over the window (hourly samples → watt-hours)."""
        return float(self.power_watts.sum()) / 1000.0

    @property
    def mean_power_watts(self) -> float:
        return float(self.power_watts.sum(axis=0).mean())

    def power_cost(self, model: PowerCostModel = PowerCostModel()) -> float:
        return model.cost(self.energy_kwh)

    # ------------------------------------------------------------------
    # Utilization (Figs. 10, 11)

    def _cpu_utilization(self) -> np.ndarray:
        return self.cpu_demand / self.cpu_capacity[:, None]

    def average_utilization_cdf(self) -> EmpiricalCDF:
        """Per-host mean CPU utilization over *active* hours (Fig. 10).

        Hosts that are never active (possible only in a degenerate
        schedule) are reported at zero.
        """
        utilization = self._cpu_utilization()
        active_hours = self.active.sum(axis=1)
        sums = np.where(self.active, utilization, 0.0).sum(axis=1)
        means = np.divide(
            sums,
            active_hours,
            out=np.zeros(len(self.host_ids)),
            where=active_hours > 0,
        )
        return EmpiricalCDF(means)

    def peak_utilization_cdf(self) -> EmpiricalCDF:
        """Per-host peak CPU utilization (Fig. 11); >1 means contention."""
        utilization = np.where(self.active, self._cpu_utilization(), 0.0)
        return EmpiricalCDF(utilization.max(axis=1))

    # ------------------------------------------------------------------
    # Contention (Figs. 8, 9)

    def _contention(self, demand: np.ndarray, capacity: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, demand - capacity[:, None]) / capacity[:, None]

    def cpu_contention_matrix(self) -> np.ndarray:
        """Unmet CPU demand as a fraction of host capacity, per host-hour."""
        return self._contention(self.cpu_demand, self.cpu_capacity)

    def memory_contention_matrix(self) -> np.ndarray:
        return self._contention(self.memory_demand, self.memory_capacity)

    def contention_time_fraction(self) -> float:
        """Fraction of provisioned server-hours with any contention (Fig. 8)."""
        contended = (self.cpu_contention_matrix() > 0) | (
            self.memory_contention_matrix() > 0
        )
        total = contended.size
        return float(contended.sum() / total) if total else 0.0

    def cpu_contention_cdf(self) -> "EmpiricalCDF | None":
        """CDF of CPU contention magnitude over contended host-hours (Fig. 9).

        Returns None when there was no contention at all — the paper
        renders that as an absent line.
        """
        contention = self.cpu_contention_matrix()
        samples = contention[contention > 0]
        if samples.size == 0:
            return None
        return EmpiricalCDF(samples)

    # ------------------------------------------------------------------
    # Dynamism (Fig. 12)

    def active_fraction_series(self) -> np.ndarray:
        """Fraction of provisioned servers active, per hour (Fig. 12)."""
        if self.provisioned_servers == 0:
            return np.zeros(self.n_hours)
        return self.active.sum(axis=0) / self.provisioned_servers

    def active_fraction_cdf(self) -> EmpiricalCDF:
        return EmpiricalCDF(self.active_fraction_series())

    # ------------------------------------------------------------------

    def total_migrations(self) -> int:
        return self.schedule.total_migrations()

    def migrations_per_interval(self) -> "np.ndarray":
        """Live migrations at each consolidation-interval boundary.

        The paper's related-work note (§6.3, citing Verma et al.):
        "more than 25% of all VMs may need to be live migrated in each
        consolidation interval" — divide by the VM count to compare.
        """
        segments = self.schedule.segments
        return np.array(
            [
                len(
                    current.placement.migrations_from(previous.placement)
                )
                for previous, current in zip(segments, segments[1:])
            ]
        )

    def mean_migration_fraction(self) -> float:
        """Mean fraction of VMs migrated per interval transition."""
        per_interval = self.migrations_per_interval()
        if per_interval.size == 0:
            return 0.0
        n_vms = len(self.schedule.segments[0].placement)
        if n_vms == 0:
            return 0.0
        return float(per_interval.mean() / n_vms)

    def summary(self) -> dict:
        """Flat metric dict used by reports and regression tests."""
        return {
            "scheme": self.scheme,
            "workload": self.workload,
            "provisioned_servers": self.provisioned_servers,
            "energy_kwh": self.energy_kwh,
            "mean_power_watts": self.mean_power_watts,
            "contention_time_fraction": self.contention_time_fraction(),
            "total_migrations": self.total_migrations(),
            "mean_migration_fraction": self.mean_migration_fraction(),
            "mean_active_fraction": float(
                self.active_fraction_series().mean()
            ),
        }
