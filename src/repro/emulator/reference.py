# repro-lint: disable-file=REPRO109  (this module IS the scalar reference)
"""Loop-based reference emulator, retained for equivalence testing.

This is the scalar implementation :class:`ConsolidationEmulator` used
before the columnar rewrite: per-VM dictionaries of adjusted demand, a
Python loop over every (segment, VM) assignment adding 1-D trace slices
onto host rows, and one power-model call per host.  It is deliberately
unoptimized — its job is to pin down the exact semantics (including the
left-to-right floating-point accumulation order per host row) that the
vectorized emulator must reproduce bit for bit.

Property tests assert ``ConsolidationEmulator.evaluate`` returns arrays
exactly equal to this implementation's; ``benchmarks/bench_kernels.py``
measures the speedup against it.  Do not "fix" performance here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.emulator.results import EmulationResult
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import EmulationError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.power import LinearPowerModel
from repro.infrastructure.server import PhysicalServer
from repro.numerics import approx_ne
from repro.sizing.estimator import VirtualizationOverhead
from repro.workloads.trace import TraceSet

__all__ = ["ReferenceConsolidationEmulator"]

#: Fallback power curve for hosts without a catalog model attached.
_DEFAULT_POWER = LinearPowerModel(idle_watts=160.0, peak_watts=400.0)


@dataclass
class ReferenceConsolidationEmulator:
    """Scalar trace replay: one Python iteration per (segment, VM)."""

    trace_set: TraceSet
    datacenter: Datacenter
    overhead: VirtualizationOverhead = field(
        default_factory=VirtualizationOverhead
    )

    def __post_init__(self) -> None:
        self._cpu = {
            trace.vm_id: trace.cpu_rpe2 * (1.0 + self.overhead.cpu_overhead_frac)
            for trace in self.trace_set
        }
        self._memory = {
            trace.vm_id: trace.memory_gb.values
            * (1.0 - self.overhead.dedup_savings_frac)
            + self.overhead.memory_overhead_gb
            for trace in self.trace_set
        }
        self._n_hours = self.trace_set.n_points
        if approx_ne(self.trace_set.interval_hours, 1.0):
            raise EmulationError(
                "emulator expects hourly traces, got "
                f"{self.trace_set.interval_hours}h samples"
            )

    def evaluate(
        self, schedule: PlacementSchedule, *, scheme: str = "unnamed"
    ) -> EmulationResult:
        """Replay the trace set against one schedule, scalar-style."""
        if schedule.start_hour != 0:
            raise EmulationError(
                f"schedule must start at hour 0, got {schedule.start_hour}"
            )
        if schedule.end_hour > self._n_hours:
            raise EmulationError(
                f"schedule ends at hour {schedule.end_hour} but traces cover "
                f"only {self._n_hours} hours"
            )

        used_hosts = self._used_hosts(schedule)
        host_index = {h.host_id: i for i, h in enumerate(used_hosts)}
        n_hosts = len(used_hosts)
        n_hours = int(schedule.end_hour)

        cpu_demand = np.zeros((n_hosts, n_hours))
        memory_demand = np.zeros((n_hosts, n_hours))
        active = np.zeros((n_hosts, n_hours), dtype=bool)

        for segment in schedule:
            start = int(segment.start_hour)
            end = int(segment.end_hour)
            for vm_id, host_id in segment.placement.assignment.items():
                row = host_index[host_id]
                cpu_trace = self._cpu.get(vm_id)
                if cpu_trace is None:
                    raise EmulationError(
                        f"placement refers to unknown VM {vm_id!r}"
                    )
                cpu_demand[row, start:end] += cpu_trace[start:end]
                memory_demand[row, start:end] += self._memory[vm_id][start:end]
                active[row, start:end] = True

        cpu_capacity = np.array([h.cpu_rpe2 for h in used_hosts])
        memory_capacity = np.array([h.memory_gb for h in used_hosts])
        power = self._power_matrix(used_hosts, cpu_demand, cpu_capacity, active)

        return EmulationResult(
            scheme=scheme,
            workload=self.trace_set.name,
            host_ids=tuple(h.host_id for h in used_hosts),
            cpu_capacity=cpu_capacity,
            memory_capacity=memory_capacity,
            cpu_demand=cpu_demand,
            memory_demand=memory_demand,
            active=active,
            power_watts=power,
            schedule=schedule,
        )

    def _used_hosts(
        self, schedule: PlacementSchedule
    ) -> List[PhysicalServer]:
        """All hosts any segment uses, in datacenter order."""
        used: Dict[str, None] = {}
        for segment in schedule:
            for host_id in segment.placement.hosts_used:
                if host_id not in self.datacenter:
                    raise EmulationError(
                        f"placement refers to unknown host {host_id!r}"
                    )
                used.setdefault(host_id, None)
        return [h for h in self.datacenter if h.host_id in used]

    @staticmethod
    def _power_matrix(
        hosts: List[PhysicalServer],
        cpu_demand: np.ndarray,
        cpu_capacity: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        utilization = np.clip(cpu_demand / cpu_capacity[:, None], 0.0, 1.0)
        power = np.zeros_like(cpu_demand)
        for row, host in enumerate(hosts):
            model = (
                LinearPowerModel.from_model(host.model)
                if host.model is not None
                else _DEFAULT_POWER
            )
            power[row] = model.power_watts_array(utilization[row])
        return np.where(active, power, 0.0)
