"""Placement schedules: which placement is live during which hours.

The emulator replays traces against a *schedule*.  Semi-static plans are
one placement covering the whole evaluation window; dynamic plans are one
placement per consolidation interval.  A :class:`PlacementSchedule`
normalizes both into an ordered list of :class:`ScheduledPlacement`
segments that tile the window exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.exceptions import EmulationError
from repro.placement.plan import Placement

__all__ = ["ScheduledPlacement", "PlacementSchedule"]


@dataclass(frozen=True)
class ScheduledPlacement:
    """One placement, live for ``[start_hour, end_hour)``."""

    placement: Placement
    start_hour: float
    end_hour: float

    def __post_init__(self) -> None:
        if self.end_hour <= self.start_hour:
            raise EmulationError(
                f"empty segment [{self.start_hour}, {self.end_hour})"
            )

    @property
    def duration_hours(self) -> float:
        return self.end_hour - self.start_hour


@dataclass(frozen=True)
class PlacementSchedule:
    """An ordered, gap-free sequence of placements over a window."""

    segments: Tuple[ScheduledPlacement, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise EmulationError("schedule needs at least one segment")
        for previous, current in zip(self.segments, self.segments[1:]):
            if current.start_hour != previous.end_hour:
                raise EmulationError(
                    f"schedule gap/overlap at hour {previous.end_hour} -> "
                    f"{current.start_hour}"
                )

    @classmethod
    def static(
        cls, placement: Placement, duration_hours: float
    ) -> "PlacementSchedule":
        """A single placement covering the whole window (semi-static)."""
        return cls(
            segments=(
                ScheduledPlacement(
                    placement=placement, start_hour=0.0, end_hour=duration_hours
                ),
            )
        )

    @classmethod
    def periodic(
        cls, placements: Sequence[Placement], interval_hours: float
    ) -> "PlacementSchedule":
        """One placement per consolidation interval (dynamic)."""
        if interval_hours <= 0:
            raise EmulationError(
                f"interval_hours must be > 0, got {interval_hours}"
            )
        segments = tuple(
            ScheduledPlacement(
                placement=placement,
                start_hour=index * interval_hours,
                end_hour=(index + 1) * interval_hours,
            )
            for index, placement in enumerate(placements)
        )
        return cls(segments=segments)

    @property
    def start_hour(self) -> float:
        return self.segments[0].start_hour

    @property
    def end_hour(self) -> float:
        return self.segments[-1].end_hour

    @property
    def duration_hours(self) -> float:
        return self.end_hour - self.start_hour

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[ScheduledPlacement]:
        return iter(self.segments)

    def total_migrations(self) -> int:
        """Live migrations the Execution step performs across the window."""
        return sum(
            len(current.placement.migrations_from(previous.placement))
            for previous, current in zip(self.segments, self.segments[1:])
        )
