"""Content-addressed on-disk result cache.

Every result is filed under the SHA-256 of its task spec salted with the
library's code version (:func:`repro.runner.hashing.code_salt`), so

* the same task always resolves to the same file, regardless of which
  benchmark, example, or test asked for it — regenerated traces and
  emulator results are shared across entry points and reruns;
* editing any result-affecting module changes the salt, which orphans
  (never corrupts) the old entries.

Layout: ``<root>/<kind>/<key[:2]>/<key>.pkl`` with a small ``.json``
sidecar carrying the spec for debuggability (``cat`` the sidecar to see
what produced an entry).  Writes go through a temp file plus
``os.replace`` so concurrent workers racing on the same task at worst
both compute it; readers never observe partial pickles.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.runner.hashing import code_salt
from repro.runner.task import ExperimentTask

__all__ = ["CacheStats", "ResultCache", "default_cache_dir", "CACHE_DIR_ENV"]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable that disables caching entirely when set to 1.
NO_CACHE_ENV = "REPRO_NO_CACHE"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-runner``."""
    configured = os.environ.get(CACHE_DIR_ENV)
    if configured:
        return Path(configured).expanduser()
    return Path("~/.cache/repro-runner").expanduser()


def cache_disabled() -> bool:
    """True when ``REPRO_NO_CACHE`` requests cache-free execution."""
    return os.environ.get(NO_CACHE_ENV, "").strip().lower() in ("1", "true", "yes")


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def describe(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.stores} stores"


class ResultCache:
    """Pickle-backed content-addressed store for task results.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first store).
    salt:
        Cache-key salt; defaults to the code-version salt so results
        never survive a source change.  Tests pin an explicit salt to
        exercise invalidation.
    """

    def __init__(
        self, root: Union[str, Path], *, salt: Optional[str] = None
    ) -> None:
        self.root = Path(root).expanduser()
        self.salt = code_salt() if salt is None else salt
        self.stats = CacheStats()

    def path_for(self, task: ExperimentTask) -> Path:
        key = task.cache_key(self.salt)
        return self.root / task.kind / key[:2] / f"{key}.pkl"

    def get(self, task: ExperimentTask) -> Tuple[object, bool]:
        """Look a task up; returns ``(result, hit)``.

        A corrupt or unreadable entry counts as a miss and is removed so
        the next store can heal it.
        """
        path = self.path_for(task)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None, False
        except Exception:
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None, False
        self.stats.hits += 1
        return result, True

    def put(self, task: ExperimentTask, result: object) -> Path:
        """Store a result atomically; returns the entry path."""
        path = self.path_for(task)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except Exception:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        sidecar = path.with_suffix(".json")
        try:
            sidecar.write_text(
                '{"spec":%s,"salt":"%s","stored_at":%.0f}'
                % (task.spec, self.salt, time.time()),
                encoding="utf-8",
            )
        except OSError:
            pass  # the sidecar is debugging aid only
        self.stats.stores += 1
        return path

    def entry_count(self) -> int:
        """Number of stored results under this root (all salts)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in list(self.root.rglob("*.pkl")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
            sidecar = path.with_suffix(".json")
            try:
                sidecar.unlink()
            except OSError:
                pass
        return removed
