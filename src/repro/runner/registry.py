"""Task-kind registry and the execution context.

An executor is a pure function ``(params, ctx) -> result`` registered
under a task kind.  The :class:`RunnerContext` threaded into every
executor lets a task compute *sub-tasks through the same cache* — the
mechanism by which one generated trace set is shared by the comparison,
sensitivity, and figure tasks that replay it, instead of each
regenerating it from scratch.

Built-in kinds live in :mod:`repro.runner.tasks`; applications may
register their own with :func:`register_task_kind` (under a process
pool this relies on fork inheriting the registration, which is the
default start method on Linux — ``--serial`` is the portable fallback).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Mapping, Optional, Set, Tuple

from repro.exceptions import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.task import ExperimentTask

__all__ = [
    "register_task_kind",
    "registered_kinds",
    "RunnerContext",
    "current_context",
    "execute",
]

TaskExecutor = Callable[[Mapping[str, object], "RunnerContext"], object]

_EXECUTORS: Dict[str, TaskExecutor] = {}


def register_task_kind(
    kind: str, *, replace: bool = False
) -> Callable[[TaskExecutor], TaskExecutor]:
    """Decorator registering an executor for a task kind."""

    def decorate(executor: TaskExecutor) -> TaskExecutor:
        if not replace and kind in _EXECUTORS:
            raise ConfigurationError(
                f"task kind {kind!r} is already registered"
            )
        _EXECUTORS[kind] = executor
        return executor

    return decorate


def executor_for(kind: str) -> TaskExecutor:
    """Resolve a kind to its executor, with a helpful error."""
    try:
        return _EXECUTORS[kind]
    except KeyError:
        known = ", ".join(sorted(_EXECUTORS)) or "(none)"
        raise ConfigurationError(
            f"unknown task kind {kind!r}; registered: {known}"
        ) from None


def registered_kinds() -> Tuple[str, ...]:
    return tuple(sorted(_EXECUTORS))


class RunnerContext:
    """Execution context handed to every task executor.

    Carries the (optional) result cache and a cycle guard for nested
    task execution.
    """

    def __init__(self, cache: Optional[ResultCache] = None) -> None:
        self.cache = cache
        self._in_progress: Set[str] = set()

    def run_task(self, task: ExperimentTask) -> object:
        """Compute a (sub-)task through the cache; returns its result."""
        result, _hit, _seconds = self.execute(task)
        return result

    def execute(self, task: ExperimentTask) -> Tuple[object, bool, float]:
        """Compute or load one task: ``(result, cache_hit, seconds)``."""
        if task.spec in self._in_progress:
            raise ConfigurationError(
                f"task cycle detected at {task.name}: a task may not "
                "(transitively) depend on itself"
            )
        # Timing below is runner telemetry only: the seconds never enter
        # a cached payload or a result, so the wall-clock reads are safe.
        started = time.perf_counter()  # repro-lint: disable=REPRO111
        if self.cache is not None:
            cached, hit = self.cache.get(task)
            if hit:
                return cached, True, time.perf_counter() - started  # repro-lint: disable=REPRO111
        executor = executor_for(task.kind)
        self._in_progress.add(task.spec)
        global _ACTIVE_CONTEXT
        previous = _ACTIVE_CONTEXT
        # The active-context swap is restored in the finally below; it
        # carries no task-visible state, only cache/cycle-guard routing.
        _ACTIVE_CONTEXT = self  # repro-lint: disable=REPRO111
        try:
            result = executor(task.params, self)
        finally:
            _ACTIVE_CONTEXT = previous  # repro-lint: disable=REPRO111
            self._in_progress.discard(task.spec)
        if self.cache is not None:
            self.cache.put(task, result)
        return result, False, time.perf_counter() - started  # repro-lint: disable=REPRO111


#: The context of the task executing right now (one task at a time per
#: process).  Lets library code reached *from inside* an executor — the
#: figure registry calling back into the comparison sweep, say — route
#: its sub-tasks through the same cache and cycle guard instead of a
#: detached default cache.
_ACTIVE_CONTEXT: Optional[RunnerContext] = None


def current_context() -> Optional[RunnerContext]:
    """The context of the currently-executing task, if any."""
    return _ACTIVE_CONTEXT


def execute(
    task: ExperimentTask, cache: Optional[ResultCache] = None
) -> Tuple[object, bool, float]:
    """Execute one task in this process: ``(result, cache_hit, seconds)``."""
    return RunnerContext(cache).execute(task)
