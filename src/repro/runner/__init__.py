"""Parallel cached experiment runner.

The execution subsystem behind the reproduction sweeps: experiment
tasks (datacenter × config × seed) fan out over a process pool, a
content-addressed on-disk cache shares regenerated traces and emulator
results across benchmarks and reruns, and every run comes back with
per-task timing and cache statistics.  See ``docs/RUNNER.md``.
"""

from repro.runner.cache import (
    CACHE_DIR_ENV,
    CacheStats,
    ResultCache,
    default_cache_dir,
)
from repro.runner.registry import (
    RunnerContext,
    execute,
    register_task_kind,
    registered_kinds,
)
from repro.runner.runner import (
    ExperimentRunner,
    RunReport,
    TaskStats,
    default_cache,
    default_workers,
    execute_cached,
)
from repro.runner.task import ExperimentTask, derive_seed
from repro.runner.tasks import (
    comparison_sweep,
    comparison_task,
    figure_task,
    planning_task,
    sensitivity_sweep,
    sensitivity_task,
    settings_from_params,
    settings_params,
    trace_task,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CacheStats",
    "ExperimentRunner",
    "ExperimentTask",
    "ResultCache",
    "RunReport",
    "RunnerContext",
    "TaskStats",
    "comparison_sweep",
    "comparison_task",
    "default_cache",
    "default_cache_dir",
    "default_workers",
    "derive_seed",
    "execute",
    "execute_cached",
    "figure_task",
    "planning_task",
    "register_task_kind",
    "registered_kinds",
    "sensitivity_sweep",
    "sensitivity_task",
    "settings_from_params",
    "settings_params",
    "trace_task",
]
