"""Built-in experiment task kinds and sweep builders.

Task kinds map the repo's experiment entry points onto the runner:

* ``trace-set`` — calibrated datacenter trace generation (the shared
  sub-task every replay depends on; cached once, reused everywhere),
* ``comparison`` — the Section-5 three-scheme comparison (Figs. 7-12),
* ``sensitivity`` — the utilization-bound sweep (Figs. 13-16),
* ``figure`` — any registered figure/table report by id,
* ``planning-run`` — one constrained planner run (the engagement
  workflow of ``examples/datacenter_planning.py``).

The factory functions build canonical :class:`ExperimentTask` specs —
every workload parameter, emulator knob, and seed lands in ``params``
so the cache key covers it.  The sweep builders produce the task lists
the paper's reproduction fans out.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Mapping, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.experiments.settings import (
    UTILIZATION_BOUND_SWEEP,
    ExperimentSettings,
)
from repro.infrastructure.costs import PowerCostModel, SpaceCostModel
from repro.runner.registry import RunnerContext, register_task_kind
from repro.runner.task import ExperimentTask, derive_seed
from repro.workloads.datacenters import (
    ALL_DATACENTERS,
    STUDY_DAYS,
    get_datacenter_config,
)
from repro.workloads.trace import TraceSet

__all__ = [
    "settings_params",
    "settings_from_params",
    "trace_task",
    "comparison_task",
    "sensitivity_task",
    "figure_task",
    "planning_task",
    "comparison_sweep",
    "sensitivity_sweep",
]

KIND_TRACE_SET = "trace-set"
KIND_COMPARISON = "comparison"
KIND_SENSITIVITY = "sensitivity"
KIND_FIGURE = "figure"
KIND_PLANNING_RUN = "planning-run"


# ----------------------------------------------------------------------
# Settings <-> params

def settings_params(settings: ExperimentSettings) -> Dict[str, object]:
    """Canonical parameter document for an :class:`ExperimentSettings`."""
    return asdict(settings)


def settings_from_params(params: Mapping[str, object]) -> ExperimentSettings:
    """Rebuild :class:`ExperimentSettings` from its parameter document."""
    document = dict(params)
    return ExperimentSettings(
        evaluation_days=int(document["evaluation_days"]),
        interval_hours=float(document["interval_hours"]),
        reservation=float(document["reservation"]),
        scale=float(document["scale"]),
        space_cost=SpaceCostModel(**dict(document["space_cost"])),
        power_cost=PowerCostModel(**dict(document["power_cost"])),
        pool_fraction=float(document["pool_fraction"]),
    )


# ----------------------------------------------------------------------
# Task factories

def trace_task(
    datacenter: str,
    *,
    scale: float,
    days: int = STUDY_DAYS,
    seed: Optional[int] = None,
) -> ExperimentTask:
    """Trace-generation task for one datacenter preset.

    ``seed=None`` keeps the preset's calibrated seed (the paper
    reproduction); sweeps over alternative realizations derive explicit
    seeds via :func:`repro.runner.task.derive_seed`.
    """
    config = get_datacenter_config(datacenter)  # validates key early
    return ExperimentTask(
        kind=KIND_TRACE_SET,
        params={
            "datacenter": config.key,
            "scale": float(scale),
            "days": int(days),
            "seed": None if seed is None else int(seed),
        },
        label=f"traces:{config.key}",
    )


def comparison_task(
    datacenter: str,
    settings: ExperimentSettings,
    *,
    seed: Optional[int] = None,
) -> ExperimentTask:
    """Section-5 three-scheme comparison task for one datacenter."""
    config = get_datacenter_config(datacenter)
    return ExperimentTask(
        kind=KIND_COMPARISON,
        params={
            "datacenter": config.key,
            "settings": settings_params(settings),
            "seed": None if seed is None else int(seed),
        },
        label=f"comparison:{config.key}",
    )


def sensitivity_task(
    datacenter: str,
    settings: ExperimentSettings,
    *,
    bounds: Sequence[float] = UTILIZATION_BOUND_SWEEP,
    seed: Optional[int] = None,
) -> ExperimentTask:
    """Utilization-bound sensitivity task (Figs. 13-16) for one datacenter."""
    config = get_datacenter_config(datacenter)
    return ExperimentTask(
        kind=KIND_SENSITIVITY,
        params={
            "datacenter": config.key,
            "settings": settings_params(settings),
            "bounds": [float(b) for b in bounds],
            "seed": None if seed is None else int(seed),
        },
        label=f"sensitivity:{config.key}",
    )


def figure_task(
    figure_id: str, settings: ExperimentSettings
) -> ExperimentTask:
    """Task computing one registered figure/table's text report."""
    return ExperimentTask(
        kind=KIND_FIGURE,
        params={
            "figure_id": figure_id.lower(),
            "settings": settings_params(settings),
        },
        label=f"figure:{figure_id.lower()}",
    )


def planning_task(
    datacenter: str,
    *,
    scale: float,
    algorithm: str,
    utilization_bound: float = 0.8,
    interval_hours: float = 2.0,
    evaluation_days: int = 14,
    pool_hosts: int,
    hosts_per_rack: int = 14,
    constraints: Sequence[Mapping[str, object]] = (),
    days: int = STUDY_DAYS,
    seed: Optional[int] = None,
) -> ExperimentTask:
    """One constrained planner run (the engagement workflow).

    ``constraints`` are declarative specs — ``{"type": "anti-colocate",
    "vms": [a, b]}``, ``{"type": "pin", "vm": v, "host": h}``, or
    ``{"type": "same-subnet", "vms": [...]}`` — so the whole run stays a
    JSON-addressable, cacheable document.
    """
    config = get_datacenter_config(datacenter)
    if algorithm not in _ALGORITHM_FACTORIES:
        known = ", ".join(sorted(_ALGORITHM_FACTORIES))
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; known: {known}"
        )
    return ExperimentTask(
        kind=KIND_PLANNING_RUN,
        params={
            "datacenter": config.key,
            "scale": float(scale),
            "days": int(days),
            "seed": None if seed is None else int(seed),
            "algorithm": algorithm,
            "utilization_bound": float(utilization_bound),
            "interval_hours": float(interval_hours),
            "evaluation_days": int(evaluation_days),
            "pool_hosts": int(pool_hosts),
            "hosts_per_rack": int(hosts_per_rack),
            "constraints": [dict(spec) for spec in constraints],
        },
        label=f"plan:{config.key}:{algorithm}@{utilization_bound:.2f}",
    )


# ----------------------------------------------------------------------
# Sweep builders

def comparison_sweep(
    settings: ExperimentSettings,
    datacenters: Optional[Sequence[str]] = None,
) -> List[ExperimentTask]:
    """Comparison tasks for the requested datacenters (default: all four)."""
    keys = (
        [c.key for c in ALL_DATACENTERS]
        if datacenters is None
        else list(datacenters)
    )
    return [comparison_task(key, settings) for key in keys]


def sensitivity_sweep(
    settings: ExperimentSettings,
    datacenters: Optional[Sequence[str]] = None,
    *,
    bounds: Sequence[float] = UTILIZATION_BOUND_SWEEP,
    replicates: int = 1,
) -> List[ExperimentTask]:
    """Sensitivity tasks per datacenter, optionally over replicate seeds.

    Replicate 0 keeps each preset's calibrated seed (the paper numbers);
    replicate ``r > 0`` derives an independent seed from the preset seed
    and ``r``, deterministically and order-independently.
    """
    if replicates < 1:
        raise ConfigurationError(f"replicates must be >= 1, got {replicates}")
    keys = (
        [c.key for c in ALL_DATACENTERS]
        if datacenters is None
        else list(datacenters)
    )
    tasks = []
    for key in keys:
        config = get_datacenter_config(key)
        for replicate in range(replicates):
            seed = (
                None
                if replicate == 0
                else derive_seed(config.seed, "sensitivity", replicate)
            )
            tasks.append(
                sensitivity_task(key, settings, bounds=bounds, seed=seed)
            )
    return tasks


# ----------------------------------------------------------------------
# Executors

@register_task_kind(KIND_TRACE_SET)
def _execute_trace_set(
    params: Mapping[str, object], ctx: RunnerContext
) -> TraceSet:
    from repro.workloads.datacenters import generate_datacenter

    seed = params.get("seed")
    return generate_datacenter(
        str(params["datacenter"]),
        scale=float(params["scale"]),  # type: ignore[arg-type]
        days=int(params["days"]),  # type: ignore[arg-type]
        seed=None if seed is None else int(seed),  # type: ignore[arg-type]
    )


def _trace_set_for(
    params: Mapping[str, object],
    ctx: RunnerContext,
    scale: float,
    days: int = STUDY_DAYS,
) -> TraceSet:
    """Resolve a task's trace set through the shared cache."""
    seed = params.get("seed")
    task = trace_task(
        str(params["datacenter"]),
        scale=scale,
        days=days,
        seed=None if seed is None else int(seed),  # type: ignore[arg-type]
    )
    result = ctx.run_task(task)
    assert isinstance(result, TraceSet)
    return result


@register_task_kind(KIND_COMPARISON)
def _execute_comparison(
    params: Mapping[str, object], ctx: RunnerContext
) -> object:
    from repro.experiments.comparison import run_comparison

    settings = settings_from_params(params["settings"])  # type: ignore[arg-type]
    trace_set = _trace_set_for(params, ctx, settings.scale)
    return run_comparison(
        str(params["datacenter"]), settings, trace_set=trace_set
    )


@register_task_kind(KIND_SENSITIVITY)
def _execute_sensitivity(
    params: Mapping[str, object], ctx: RunnerContext
) -> object:
    from repro.experiments.sensitivity import run_sensitivity

    settings = settings_from_params(params["settings"])  # type: ignore[arg-type]
    trace_set = _trace_set_for(params, ctx, settings.scale)
    return run_sensitivity(
        str(params["datacenter"]),
        settings,
        bounds=tuple(params["bounds"]),  # type: ignore[arg-type]
        trace_set=trace_set,
    )


@register_task_kind(KIND_FIGURE)
def _execute_figure(params: Mapping[str, object], ctx: RunnerContext) -> str:
    from repro.experiments.figures import run_figure

    settings = settings_from_params(params["settings"])  # type: ignore[arg-type]
    return run_figure(str(params["figure_id"]), settings)


_ALGORITHM_FACTORIES = {
    "semi-static": "SemiStaticConsolidation",
    "stochastic": "StochasticConsolidation",
    "dynamic": "DynamicConsolidation",
}


def _build_constraint(spec: Mapping[str, object]) -> object:
    from repro.constraints import AntiColocate, PinToHost, SameSubnet

    kind = spec.get("type")
    if kind == "anti-colocate":
        vms = list(spec["vms"])  # type: ignore[arg-type]
        return AntiColocate(*vms)
    if kind == "pin":
        return PinToHost(str(spec["vm"]), str(spec["host"]))
    if kind == "same-subnet":
        vms = list(spec["vms"])  # type: ignore[arg-type]
        return SameSubnet(*vms)
    raise ConfigurationError(f"unknown constraint spec type {kind!r}")


@register_task_kind(KIND_PLANNING_RUN)
def _execute_planning_run(
    params: Mapping[str, object], ctx: RunnerContext
) -> object:
    import repro.core as core
    from repro.constraints.manager import ConstraintSet
    from repro.core.base import PlanningConfig
    from repro.core.planner import ConsolidationPlanner
    from repro.infrastructure.datacenter import build_target_pool

    trace_set = _trace_set_for(
        params,
        ctx,
        float(params["scale"]),  # type: ignore[arg-type]
        days=int(params["days"]),  # type: ignore[arg-type]
    )
    pool = build_target_pool(
        f"{params['datacenter']}-pool",
        host_count=int(params["pool_hosts"]),  # type: ignore[arg-type]
        hosts_per_rack=int(params["hosts_per_rack"]),  # type: ignore[arg-type]
    )
    constraints = ConstraintSet(
        [_build_constraint(spec) for spec in params["constraints"]]  # type: ignore[union-attr]
    )
    planner = ConsolidationPlanner(
        traces=trace_set,
        datacenter=pool,
        constraints=constraints,
        config=PlanningConfig(
            utilization_bound=float(params["utilization_bound"]),  # type: ignore[arg-type]
            interval_hours=float(params["interval_hours"]),  # type: ignore[arg-type]
        ),
        evaluation_days=int(params["evaluation_days"]),  # type: ignore[arg-type]
    )
    algorithm_class = getattr(core, _ALGORITHM_FACTORIES[str(params["algorithm"])])
    return planner.run(algorithm_class())
