"""Stable hashing for experiment task specs.

The cache in :mod:`repro.runner.cache` is content-addressed: a task's
on-disk location is a function of *what* it computes (its canonical
parameter document) and *which code* computes it (a salt derived from
the library sources).  Both halves must be reproducible across
processes, interpreter sessions, and dict orderings, so this module
defines one canonical JSON encoding and hashes it with SHA-256.

The module is a leaf like :mod:`repro.numerics`: it imports nothing
from the rest of :mod:`repro` except the exception types, so every
layer can hash specs without cycles.
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Mapping, Sequence, Union

from repro.exceptions import ConfigurationError

__all__ = ["canonical_json", "stable_hash", "code_salt"]

#: JSON-representable parameter values (recursively).
ParamValue = Union[
    None, bool, int, float, str, Sequence["ParamValue"], Mapping[str, "ParamValue"]
]


def _canonicalize(value: ParamValue, path: str) -> object:
    """Reduce a parameter value to plain JSON types, rejecting the rest.

    Tuples become lists; mapping keys must already be strings (silently
    coercing arbitrary keys would let two distinct specs collide).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ConfigurationError(
                f"task param {path}: non-finite float {value!r} is not cacheable"
            )
        return value
    if isinstance(value, (list, tuple)):
        return [
            _canonicalize(item, f"{path}[{index}]")
            for index, item in enumerate(value)
        ]
    if isinstance(value, Mapping):
        result = {}
        for key in value:
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"task param {path}: mapping keys must be str, got "
                    f"{type(key).__name__}"
                )
            result[key] = _canonicalize(value[key], f"{path}.{key}")
        return result
    raise ConfigurationError(
        f"task param {path}: {type(value).__name__} is not a JSON-encodable "
        "spec value (use plain scalars, lists, and string-keyed dicts)"
    )


def canonical_json(value: ParamValue) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace.

    Floats rely on ``repr``'s shortest-round-trip guarantee (Python 3),
    so the same float always encodes to the same text.
    """
    return json.dumps(
        _canonicalize(value, "$"), sort_keys=True, separators=(",", ":")
    )


def stable_hash(value: ParamValue, *, salt: str = "") -> str:
    """SHA-256 hex digest of a spec document under an optional salt."""
    digest = hashlib.sha256()
    digest.update(salt.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(canonical_json(value).encode("utf-8"))
    return digest.hexdigest()


@lru_cache(maxsize=1)
def code_salt() -> str:
    """Cache-invalidation salt derived from the library's source files.

    Any change to a ``repro`` module that can influence results (all of
    them except the :mod:`repro.devtools` lint tooling) produces a new
    salt, so stale cached results are never served across code versions.
    Computed once per process (the tree is a few hundred KB).
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if relative.startswith("devtools/"):
            continue
        digest.update(relative.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]
