"""Parallel, cached experiment execution.

:class:`ExperimentRunner` fans a list of :class:`ExperimentTask` out
over a ``concurrent.futures`` process pool, consulting the
content-addressed cache before computing anything.  The guarantees:

* **Determinism** — results depend only on task specs (executors are
  pure, seeds live in the spec), so serial, parallel(2), parallel(4),
  and cache-warm runs of the same sweep return identical results, in
  input order.
* **Reuse** — every worker shares the on-disk cache, so one generated
  trace set serves all the benchmarks, examples, and reruns that need
  it; a warm rerun skips trace generation and emulation entirely.
* **Accounting** — per-task timing, cache-hit flags, and worker ids
  come back in a :class:`RunReport` with a printable summary.

``serial=True`` (the ``--serial`` escape hatch everywhere) executes in
the calling process with identical semantics — useful under debuggers,
on platforms without fork, or to baseline the parallel speedup.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.runner.cache import ResultCache, cache_disabled, default_cache_dir
from repro.runner.registry import RunnerContext, current_context, execute
from repro.runner.task import ExperimentTask

__all__ = [
    "TaskStats",
    "RunReport",
    "ExperimentRunner",
    "default_cache",
    "execute_cached",
    "default_workers",
]

#: Cap on the default worker count; sweeps here are 4-30 tasks, and the
#: memory high-water mark scales with concurrent emulations.
_MAX_DEFAULT_WORKERS = 8


def default_workers() -> int:
    """Default pool size: CPU count, capped."""
    return max(1, min(_MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


def default_cache() -> Optional[ResultCache]:
    """The process-default cache, or None when ``REPRO_NO_CACHE`` is set."""
    if cache_disabled():
        return None
    return ResultCache(default_cache_dir())


def execute_cached(task: ExperimentTask) -> object:
    """Run one task in-process through the ambient cache.

    The single-task convenience the figure registry and CLI use; sweeps
    should go through :class:`ExperimentRunner`.  When called from
    inside a running task executor, the sub-task shares that task's
    context (cache and cycle guard) instead of opening the default
    cache — so a ``figure`` task resolving its comparison rows lands
    them in the same store its runner configured.
    """
    ctx = current_context()
    if ctx is not None:
        return ctx.run_task(task)
    result, _hit, _seconds = execute(task, default_cache())
    return result


@dataclass(frozen=True)
class TaskStats:
    """Execution record for one task."""

    name: str
    kind: str
    seconds: float
    cached: bool
    worker: str

    def row(self) -> Tuple[str, str, str, str]:
        return (
            self.name,
            f"{self.seconds:.2f}s",
            "hit" if self.cached else "miss",
            self.worker,
        )


@dataclass(frozen=True)
class RunReport:
    """Everything one :meth:`ExperimentRunner.run` call produced.

    ``results`` is ordered like the submitted task list, independent of
    completion order.
    """

    results: Tuple[object, ...]
    stats: Tuple[TaskStats, ...]
    wall_seconds: float
    workers: int

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.stats if s.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for s in self.stats if not s.cached)

    @property
    def task_seconds(self) -> float:
        """Summed per-task compute time (> wall time when parallel)."""
        return sum(s.seconds for s in self.stats)

    @property
    def throughput_tasks_per_s(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.stats) / self.wall_seconds

    @property
    def parallel_efficiency(self) -> float:
        """Ratio of summed task time to wall time (speedup achieved)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.task_seconds / self.wall_seconds

    def describe(self) -> str:
        """Printable run summary (per-task timing plus totals)."""
        from repro.experiments.formatting import format_table

        table = format_table(
            ["task", "time", "cache", "worker"],
            [s.row() for s in self.stats],
        )
        return (
            f"{table}\n"
            f"{len(self.stats)} tasks in {self.wall_seconds:.2f}s wall "
            f"({self.task_seconds:.2f}s task time, "
            f"{self.throughput_tasks_per_s:.2f} tasks/s, "
            f"speedup {self.parallel_efficiency:.1f}x) — "
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"over {self.workers} worker(s)"
        )


def _execute_payload(
    payload: Tuple[str, dict, str, Optional[str], Optional[str]]
) -> Tuple[object, bool, float, str]:
    """Worker-side entry point: rebuild the task, execute through cache."""
    kind, params, label, cache_dir, salt = payload
    task = ExperimentTask(kind=kind, params=params, label=label)
    cache = (
        ResultCache(cache_dir, salt=salt) if cache_dir is not None else None
    )
    result, hit, seconds = execute(task, cache)
    return result, hit, seconds, f"pid:{os.getpid()}"


class ExperimentRunner:
    """Fans experiment tasks out over a seeded, cached process pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to :func:`default_workers`.
    serial:
        Execute in-process instead (the ``--serial`` escape hatch).
    cache_dir:
        Cache root; defaults to ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro-runner``.  ``use_cache=False`` disables
        caching entirely.
    salt:
        Cache-key salt override; defaults to the code-version salt.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        serial: bool = False,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
        salt: Optional[str] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = default_workers() if workers is None else int(workers)
        self.serial = serial or self.workers == 1
        self._use_cache = use_cache and not cache_disabled()
        self._salt = salt
        self._cache_dir: Optional[Path]
        if not self._use_cache:
            self._cache_dir = None
        elif cache_dir is not None:
            self._cache_dir = Path(cache_dir).expanduser()
        else:
            self._cache_dir = default_cache_dir()

    @property
    def cache_dir(self) -> Optional[Path]:
        return self._cache_dir

    def cache(self) -> Optional[ResultCache]:
        """A fresh cache handle for this runner's configuration."""
        if self._cache_dir is None:
            return None
        return ResultCache(self._cache_dir, salt=self._salt)

    def run(self, tasks: Sequence[ExperimentTask]) -> RunReport:
        """Execute tasks (parallel unless serial); results in input order."""
        task_list = list(tasks)
        for task in task_list:
            if not isinstance(task, ExperimentTask):
                raise ConfigurationError(
                    f"expected ExperimentTask, got {type(task).__name__}"
                )
        started = time.perf_counter()
        if self.serial or len(task_list) <= 1:
            results, stats = self._run_serial(task_list)
        else:
            results, stats = self._run_parallel(task_list)
        wall = time.perf_counter() - started
        return RunReport(
            results=tuple(results),
            stats=tuple(stats),
            wall_seconds=wall,
            workers=1 if self.serial else self.workers,
        )

    def run_one(self, task: ExperimentTask) -> object:
        """Execute a single task through this runner's cache."""
        return self.run([task]).results[0]

    def _run_serial(
        self, tasks: List[ExperimentTask]
    ) -> Tuple[List[object], List[TaskStats]]:
        ctx = RunnerContext(self.cache())
        results: List[object] = []
        stats: List[TaskStats] = []
        for task in tasks:
            result, hit, seconds = ctx.execute(task)
            results.append(result)
            stats.append(
                TaskStats(
                    name=task.name,
                    kind=task.kind,
                    seconds=seconds,
                    cached=hit,
                    worker="serial",
                )
            )
        return results, stats

    def _run_parallel(
        self, tasks: List[ExperimentTask]
    ) -> Tuple[List[object], List[TaskStats]]:
        cache_dir = None if self._cache_dir is None else str(self._cache_dir)
        payloads = [
            (task.kind, dict(task.params), task.label, cache_dir, self._salt)
            for task in tasks
        ]
        workers = min(self.workers, len(tasks))
        results: List[object] = []
        stats: List[TaskStats] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_execute_payload, payload) for payload in payloads
            ]
            for task, future in zip(tasks, futures):
                result, hit, seconds, worker = future.result()
                results.append(result)
                stats.append(
                    TaskStats(
                        name=task.name,
                        kind=task.kind,
                        seconds=seconds,
                        cached=hit,
                        worker=worker,
                    )
                )
        return results, stats
