"""The experiment task model.

An :class:`ExperimentTask` is the unit the runner fans out: a *kind*
(which registered executor computes it) plus a canonical, JSON-encodable
parameter document that fully determines the result — workload
parameters, emulator configuration, and seeds all live in ``params``.
Because the spec determines the result, it also addresses the cache:
``task.cache_key(salt)`` is the content hash the on-disk store files
results under.

Determinism contract
--------------------
Executors must be pure functions of their params: every random draw has
to come from a seed recorded in the spec (or derived from it via
:func:`derive_seed`).  That is what makes serial, parallel, and
cache-warm runs of the same sweep bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import ConfigurationError
from repro.runner.hashing import canonical_json, stable_hash

__all__ = ["ExperimentTask", "derive_seed"]

#: Derived seeds stay within numpy's legal ``SeedSequence`` entropy range.
_SEED_BITS = 63


def derive_seed(base_seed: int, *parts: object) -> int:
    """Deterministically derive a child seed from a base seed and labels.

    Sweeps that need one independent trace realization per (datacenter,
    replicate) cell derive each cell's seed from the preset's base seed
    and the cell coordinates.  The derivation hashes the canonical JSON
    of its inputs, so it is independent of execution order, worker
    count, and process boundaries — the property the parallel runner's
    bit-identical guarantee rests on.
    """
    digest = stable_hash([int(base_seed), list(parts)])
    return int(digest[:16], 16) & ((1 << _SEED_BITS) - 1)


@dataclass(frozen=True)
class ExperimentTask:
    """One cacheable unit of experiment work.

    Attributes
    ----------
    kind:
        Registered executor name (``"comparison"``, ``"sensitivity"``,
        ``"trace-set"``, ...); see :mod:`repro.runner.tasks`.
    params:
        JSON-encodable spec that fully determines the result.
    label:
        Human-readable name for summaries; defaults to ``kind:hash``.
    """

    kind: str
    params: Mapping[str, object]
    label: str = ""
    #: Canonical spec document, computed once at construction.
    _spec: str = field(init=False, repr=False, compare=False, default="")

    def __post_init__(self) -> None:
        if not self.kind:
            raise ConfigurationError("task kind must be non-empty")
        spec = canonical_json({"kind": self.kind, "params": dict(self.params)})
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "_spec", spec)

    @property
    def spec(self) -> str:
        """The canonical JSON document identifying this task."""
        return self._spec

    def cache_key(self, salt: str) -> str:
        """Content address of this task's result under a code salt."""
        return stable_hash(self.spec, salt=salt)

    @property
    def name(self) -> str:
        """Display name: the label, or ``kind:shorthash``."""
        if self.label:
            return self.label
        return f"{self.kind}:{stable_hash(self.spec)[:8]}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExperimentTask):
            return NotImplemented
        return self._spec == other._spec

    def __hash__(self) -> int:
        return hash(self._spec)
