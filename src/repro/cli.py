"""Command-line interface: ``repro-vmc``.

Subcommands:

* ``repro-vmc list`` — list reproducible figures/tables.
* ``repro-vmc figure fig7 [--scale 0.25]`` — run one figure experiment
  and print its text report.
* ``repro-vmc analyze banking`` — Section-4 analysis for one datacenter.
* ``repro-vmc compare banking`` — Section-5 comparison for one datacenter.
* ``repro-vmc candidates banking`` — Bobroff-style dynamic-placement
  candidate ranking.
* ``repro-vmc intervals banking`` — §7 consolidation-interval study.
* ``repro-vmc migration-ladder`` — §7 migration-technology reservation
  ladder.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments.comparison import run_comparison
from repro.experiments.figures import list_figures, run_figure
from repro.experiments.formatting import format_table
from repro.experiments.settings import ExperimentSettings
from repro.workloads.datacenters import generate_datacenter
from repro.analysis import analyze_burstiness, analyze_resource_ratio, rank_candidates

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-vmc",
        description=(
            "Reproduction of 'Virtual Machine Consolidation in the Wild' "
            "(Middleware 2014)"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="datacenter scale factor (default: REPRO_SCALE env or 0.25)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list reproducible figures/tables")

    figure = subparsers.add_parser("figure", help="run one figure experiment")
    figure.add_argument("figure_id", help="e.g. fig7, table2, obs4")

    analyze = subparsers.add_parser(
        "analyze", help="Section-4 trace analysis for one datacenter"
    )
    analyze.add_argument("datacenter", help="banking | airlines | ...")

    compare = subparsers.add_parser(
        "compare", help="Section-5 scheme comparison for one datacenter"
    )
    compare.add_argument("datacenter", help="banking | airlines | ...")

    candidates = subparsers.add_parser(
        "candidates",
        help="rank servers by dynamic-placement suitability (Bobroff)",
    )
    candidates.add_argument("datacenter", help="banking | airlines | ...")
    candidates.add_argument(
        "--top", type=int, default=10, help="rows to print"
    )

    intervals = subparsers.add_parser(
        "intervals", help="consolidation-interval study (paper §7)"
    )
    intervals.add_argument("datacenter", help="banking | airlines | ...")

    subparsers.add_parser(
        "migration-ladder",
        help="required reservation per migration technology (paper §7)",
    )

    validate = subparsers.add_parser(
        "validate",
        help="check the reproduction against the paper's bands",
    )
    validate.add_argument(
        "--fast",
        action="store_true",
        help="trace-level checks only (skip the scheme comparison)",
    )

    report = subparsers.add_parser(
        "report", help="run every experiment and emit a markdown report"
    )
    report.add_argument(
        "--out", default=None, help="write to a file instead of stdout"
    )
    report.add_argument(
        "--figures",
        nargs="*",
        default=None,
        help="subset of figure ids (default: all, in paper order)",
    )
    return parser


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    if args.scale is None:
        return ExperimentSettings()
    return ExperimentSettings(scale=args.scale)


def _cmd_list() -> int:
    for figure_id in list_figures():
        print(figure_id)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    print(run_figure(args.figure_id, _settings(args)))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    settings = _settings(args)
    trace_set = generate_datacenter(args.datacenter, scale=settings.scale)
    burstiness = analyze_burstiness(trace_set)
    ratio = analyze_resource_ratio(trace_set)
    print(f"{trace_set.name}: {len(trace_set)} servers, "
          f"mean CPU util {trace_set.mean_cpu_utilization():.1%}")
    for resource in ("cpu", "memory"):
        p2a = burstiness.peak_to_average[(resource, 1.0)]
        cov = burstiness.cov[resource]
        print(
            f"  {resource}: P2A median {p2a.median:.2f}, "
            f"P2A>5 {p2a.fraction_above(5):.0%}, "
            f"CoV>=1 {cov.fraction_above(1.0):.0%}"
        )
    print(
        f"  CPU:memory ratio median {ratio.median_ratio:.0f} "
        f"(memory-constrained {ratio.fraction_memory_constrained:.0%} "
        f"of intervals; HS23 reference {ratio.reference_ratio:.0f})"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    settings = _settings(args)
    comparison = run_comparison(args.datacenter, settings)
    rows = [
        (
            r["scheme"],
            r["servers"],
            f"{r['space_norm']:.2f}",
            f"{r['power_norm']:.2f}",
            f"{r['contention']:.4f}",
            r["migrations"],
        )
        for r in comparison.summary_rows()
    ]
    print(
        format_table(
            ["scheme", "servers", "space", "power", "contention", "migrations"],
            rows,
        )
    )
    return 0


def _cmd_candidates(args: argparse.Namespace) -> int:
    settings = _settings(args)
    trace_set = generate_datacenter(args.datacenter, scale=settings.scale)
    ranked = rank_candidates(trace_set)
    good = sum(1 for s in ranked if s.is_good_candidate)
    print(
        f"{trace_set.name}: {good}/{len(ranked)} servers are good "
        "dynamic-placement candidates (Bobroff-style cut)"
    )
    rows = [
        (
            s.vm_id,
            f"{s.reclaimable_fraction:.2f}",
            f"{s.predictability:.2f}",
            f"{s.score:.2f}",
            "yes" if s.is_good_candidate else "no",
        )
        for s in ranked[: args.top]
    ]
    print(
        format_table(
            ["vm", "reclaimable", "predictability", "score", "good"], rows
        )
    )
    return 0


def _cmd_intervals(args: argparse.Namespace) -> int:
    from repro.experiments.intervals import run_interval_study

    settings = _settings(args)
    points = run_interval_study(args.datacenter, settings)
    rows = [
        (
            f"{p.interval_hours:.0f}h",
            p.provisioned_servers,
            f"{p.energy_kwh:.0f}",
            p.total_migrations,
            f"{p.contention_time_fraction:.4f}",
        )
        for p in points
    ]
    print(
        format_table(
            ["interval", "servers", "energy_kwh", "migrations", "contention"],
            rows,
        )
    )
    return 0


def _cmd_migration_ladder() -> int:
    from repro.migration.whatif import MIGRATION_VARIANTS, reservation_ladder

    descriptions = {v.key: v.description for v in MIGRATION_VARIANTS}
    rows = [
        (key, f"{reservation:.0%}", descriptions[key])
        for key, reservation in reservation_ladder()
    ]
    print(format_table(["technology", "reservation", "description"], rows))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validate import validate_reproduction

    report = validate_reproduction(
        _settings(args), include_comparison=not args.fast
    )
    print(report.describe())
    return 0 if report.passed else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    report = generate_report(_settings(args), figures=args.figures)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "candidates":
        return _cmd_candidates(args)
    if args.command == "intervals":
        return _cmd_intervals(args)
    if args.command == "migration-ladder":
        return _cmd_migration_ladder()
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "validate":
        return _cmd_validate(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
