"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class at an API boundary.  More specific
subclasses are raised close to where the problem is detected:

* configuration / input validation problems raise :class:`ConfigurationError`,
* infeasible placement problems raise :class:`PlacementError`,
* constraint violations raise :class:`ConstraintViolation`,
* trace shape or unit mismatches raise :class:`TraceError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TraceError",
    "PlacementError",
    "ConstraintViolation",
    "EmulationError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An input parameter or configuration object is invalid.

    Raised eagerly at construction time, never deep inside a long-running
    planning loop, so misconfiguration surfaces before any work is done.
    """


class TraceError(ReproError):
    """A resource trace has an invalid shape, unit, or value range."""


class PlacementError(ReproError):
    """A placement request cannot be satisfied.

    Typical causes: a VM demand larger than the biggest host, or a
    constraint set that rules out every candidate host.
    """


class ConstraintViolation(PlacementError):
    """A placement violates a deployment constraint.

    Subclass of :class:`PlacementError` because a violated constraint is
    one specific way a placement can be infeasible.
    """


class EmulationError(ReproError):
    """The consolidation emulator was driven with inconsistent inputs."""


class ServiceError(ReproError):
    """The online consolidation service was driven with invalid input.

    Raised for malformed protocol requests and controller misuse; the
    server maps it to an error *response* rather than a dropped
    connection, and the controller's event loop treats it as a
    recoverable per-cycle fault.
    """
