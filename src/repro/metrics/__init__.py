"""Server capacity metrics: RPE2 units and the hardware catalog."""

from repro.metrics.catalog import (
    HS23_ELITE,
    SOURCE_MODELS,
    ServerModel,
    get_model,
    list_models,
    register_model,
)
from repro.metrics.rpe2 import Rpe2, rpe2_to_utilization, utilization_to_rpe2

__all__ = [
    "Rpe2",
    "ServerModel",
    "HS23_ELITE",
    "SOURCE_MODELS",
    "get_model",
    "list_models",
    "register_model",
    "rpe2_to_utilization",
    "utilization_to_rpe2",
]
