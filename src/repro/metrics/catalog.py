"""Hardware catalog: server models with RPE2 capacity and memory.

The paper anchors all CPU:memory ratio comparisons on one reference
machine, the *IBM HS23 Elite* blade (2 processors, 128 GB RAM), whose
CPU:memory ratio is 160 RPE2 per GB (Fig. 6 caption).  We encode that
anchor exactly: ``HS23_ELITE`` has 128 GB and ``160 * 128 = 20480`` RPE2.

Source (pre-consolidation) servers in 2012-era enterprise datacenters were
mostly small 1-2 socket Windows boxes.  The catalog provides a handful of
representative source models; their absolute RPE2 values are on the same
scale as the HS23 anchor so demand aggregation is consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "ServerModel",
    "HS23_ELITE",
    "SOURCE_MODELS",
    "get_model",
    "register_model",
    "list_models",
]


@dataclass(frozen=True)
class ServerModel:
    """A hardware model in the catalog.

    Attributes
    ----------
    name:
        Catalog key, e.g. ``"hs23-elite"``.
    cpu_rpe2:
        Total compute capacity in RPE2 units.
    memory_gb:
        Installed RAM in GB.
    idle_watts / peak_watts:
        Power draw at idle and at 100% CPU utilization, used by the linear
        power model.
    description:
        Human-readable description for reports.
    """

    name: str
    cpu_rpe2: float
    memory_gb: float
    idle_watts: float
    peak_watts: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.cpu_rpe2 <= 0:
            raise ConfigurationError(f"{self.name}: cpu_rpe2 must be > 0")
        if self.memory_gb <= 0:
            raise ConfigurationError(f"{self.name}: memory_gb must be > 0")
        if self.idle_watts < 0 or self.peak_watts < self.idle_watts:
            raise ConfigurationError(
                f"{self.name}: need 0 <= idle_watts <= peak_watts, "
                f"got idle={self.idle_watts}, peak={self.peak_watts}"
            )

    @property
    def cpu_memory_ratio(self) -> float:
        """RPE2 per GB of RAM — the paper's Fig. 6 comparison metric."""
        return self.cpu_rpe2 / self.memory_gb


#: The reference virtualization blade from the paper: 2 processors, 128 GB,
#: CPU:memory ratio of exactly 160 RPE2/GB.
HS23_ELITE = ServerModel(
    name="hs23-elite",
    cpu_rpe2=160.0 * 128.0,
    memory_gb=128.0,
    idle_watts=160.0,
    peak_watts=400.0,
    description="IBM HS23 Elite blade, 2 sockets, 128 GB (extended memory)",
)

#: Representative 2012-era source (pre-consolidation) server models.
#: Small Windows boxes: 1-2 sockets, 2-16 GB RAM.
SOURCE_MODELS: Tuple[ServerModel, ...] = (
    ServerModel(
        name="rack-1u-small",
        cpu_rpe2=1800.0,
        memory_gb=4.0,
        idle_watts=110.0,
        peak_watts=220.0,
        description="1U single-socket pizza box, 4 GB",
    ),
    ServerModel(
        name="rack-1u-medium",
        cpu_rpe2=3000.0,
        memory_gb=8.0,
        idle_watts=130.0,
        peak_watts=280.0,
        description="1U dual-core, 8 GB",
    ),
    ServerModel(
        name="rack-2u-large",
        cpu_rpe2=5200.0,
        memory_gb=16.0,
        idle_watts=180.0,
        peak_watts=380.0,
        description="2U dual-socket, 16 GB",
    ),
)

_CATALOG: Dict[str, ServerModel] = {m.name: m for m in (HS23_ELITE, *SOURCE_MODELS)}


def get_model(name: str) -> ServerModel:
    """Look up a server model by catalog key.

    Raises
    ------
    ConfigurationError
        If the model is not in the catalog.
    """
    try:
        return _CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(_CATALOG))
        raise ConfigurationError(
            f"unknown server model {name!r}; known models: {known}"
        ) from None


def register_model(model: ServerModel, *, replace: bool = False) -> None:
    """Add a custom server model to the catalog.

    Parameters
    ----------
    model:
        The model to register.
    replace:
        Allow overwriting an existing entry.  Off by default so tests and
        applications do not silently clobber the built-in anchors.
    """
    if model.name in _CATALOG and not replace:
        raise ConfigurationError(
            f"server model {model.name!r} already registered; "
            "pass replace=True to overwrite"
        )
    _CATALOG[model.name] = model


def list_models() -> Tuple[ServerModel, ...]:
    """Return all registered models, sorted by name."""
    return tuple(_CATALOG[k] for k in sorted(_CATALOG))
