"""RPE2-style server compute capacity units.

The paper measures CPU demand in units of the *IDEAS RPE2 Relative Server
Performance Estimate v2* benchmark, a scalar "how much compute can this box
deliver" number.  The absolute scale is arbitrary; consolidation planning
only ever compares RPE2 demand against RPE2 capacity, and compares the
aggregate CPU:memory demand ratio against a reference server's ratio.

This module provides a tiny value type, :class:`Rpe2`, that makes the unit
explicit in signatures, plus conversion helpers between utilization
fractions and RPE2 demand.  ``Rpe2`` intentionally behaves like a float in
arithmetic so numpy vectorization stays trivial.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["Rpe2", "utilization_to_rpe2", "rpe2_to_utilization"]


@dataclass(frozen=True, order=True)
class Rpe2:
    """A compute capacity or demand expressed in RPE2 units.

    The wrapper exists for readability at API boundaries (``capacity:
    Rpe2``) while staying cheap: ``float(x)`` unwraps it, and arithmetic
    with plain numbers returns plain floats.
    """

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ConfigurationError(
                f"RPE2 capacity must be non-negative, got {self.value}"
            )

    def __float__(self) -> float:
        return float(self.value)

    def __add__(self, other: "Rpe2 | float") -> "Rpe2":
        return Rpe2(self.value + float(other))

    def __sub__(self, other: "Rpe2 | float") -> "Rpe2":
        return Rpe2(self.value - float(other))

    def __mul__(self, factor: float) -> "Rpe2":
        return Rpe2(self.value * float(factor))

    __rmul__ = __mul__

    def __truediv__(self, other: "Rpe2 | float") -> float:
        return self.value / float(other)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Rpe2({self.value:g})"


def utilization_to_rpe2(utilization: float, capacity_rpe2: float) -> float:
    """Convert a CPU utilization fraction into absolute RPE2 demand.

    Parameters
    ----------
    utilization:
        CPU utilization as a fraction of the host's capacity.  Values above
        1.0 are allowed — they represent unsatisfied (contended) demand.
    capacity_rpe2:
        The host's total compute capacity in RPE2 units.
    """
    if utilization < 0:
        raise ConfigurationError(f"utilization must be >= 0, got {utilization}")
    if capacity_rpe2 <= 0:
        raise ConfigurationError(f"capacity must be > 0, got {capacity_rpe2}")
    return utilization * capacity_rpe2


def rpe2_to_utilization(demand_rpe2: float, capacity_rpe2: float) -> float:
    """Convert absolute RPE2 demand into a utilization fraction of a host."""
    if demand_rpe2 < 0:
        raise ConfigurationError(f"demand must be >= 0, got {demand_rpe2}")
    if capacity_rpe2 <= 0:
        raise ConfigurationError(f"capacity must be > 0, got {capacity_rpe2}")
    return demand_rpe2 / capacity_rpe2
