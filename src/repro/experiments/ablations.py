"""Ablation studies over the reproduction's own design choices.

DESIGN.md §4.0 documents three calibration-era levers (cross-server
correlation, the PCP tail-overlap factor, the dynamic burst premium) and
the predictor choice; each function here isolates one of them so its
effect on the Section-5 results is measurable.  The corresponding
benches (``benchmarks/bench_ablation_*.py``) print these results.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.dynamic import DynamicConsolidation
from repro.core.planner import ConsolidationPlanner
from repro.core.semistatic import SemiStaticConsolidation
from repro.core.stochastic import StochasticConsolidation
from repro.emulator.results import EmulationResult
from repro.experiments.comparison import ComparisonResult, run_comparison
from repro.experiments.settings import ExperimentSettings
from repro.metrics.catalog import get_model
from repro.sizing.prediction import (
    EwmaPredictor,
    LastIntervalPredictor,
    OraclePredictor,
    PeriodicPeakPredictor,
    Predictor,
)
from repro.workloads.datacenters import (
    _group_counts,
    generate_datacenter,
    get_datacenter_config,
)
from repro.workloads.generator import generate_trace_set
from repro.workloads.trace import HOURS_PER_DAY, TraceSet

__all__ = [
    "generate_uncorrelated_datacenter",
    "run_correlation_ablation",
    "PREDICTOR_LADDER",
    "run_predictor_ablation",
    "run_tail_overlap_ablation",
]


def generate_uncorrelated_datacenter(
    key: str, *, scale: float, days: int = 30
) -> TraceSet:
    """A datacenter preset with the correlation model stripped.

    Same class mixes, hardware and seeds as the preset — only the shared
    business factor and flash-event calendar are removed, isolating the
    effect of cross-server correlation on consolidation results.
    """
    config = get_datacenter_config(key)
    total = max(len(config.groups), int(round(config.server_count * scale)))
    counts = _group_counts(config, total)
    specs = [
        (group.profile, get_model(group.hardware), count)
        for group, count in zip(config.groups, counts)
    ]
    return generate_trace_set(
        name=config.key,
        specs=specs,
        n_hours=days * HOURS_PER_DAY,
        seed=config.seed,
        correlation=None,
    )


def run_correlation_ablation(
    key: str, settings: Optional[ExperimentSettings] = None
) -> Tuple[ComparisonResult, ComparisonResult]:
    """(correlated, independent) Section-5 comparisons for one DC."""
    settings = settings or ExperimentSettings()
    correlated = run_comparison(
        key, settings, trace_set=generate_datacenter(key, scale=settings.scale)
    )
    independent = run_comparison(
        key,
        settings,
        trace_set=generate_uncorrelated_datacenter(key, scale=settings.scale),
    )
    return correlated, independent


#: The predictor ladder the predictor ablation sweeps, least to most
#: informed.  The oracle bound isolates packing from prediction error.
PREDICTOR_LADDER: Tuple[Tuple[str, Predictor], ...] = (
    ("last-interval", LastIntervalPredictor()),
    ("ewma", EwmaPredictor(alpha=0.3)),
    ("periodic-2d (default)", PeriodicPeakPredictor(lookback_days=2)),
    ("periodic-7d", PeriodicPeakPredictor(lookback_days=7)),
    ("oracle", OraclePredictor()),
)


def run_predictor_ablation(
    key: str,
    settings: Optional[ExperimentSettings] = None,
    *,
    ladder: Sequence[Tuple[str, Predictor]] = PREDICTOR_LADDER,
) -> Dict[str, EmulationResult]:
    """Dynamic consolidation under each predictor, same traces/pool."""
    settings = settings or ExperimentSettings()
    traces = generate_datacenter(key, scale=settings.scale)
    pool = settings.build_pool(traces)
    planner = ConsolidationPlanner(
        traces=traces,
        datacenter=pool,
        config=settings.planning_config(),
        evaluation_days=settings.evaluation_days,
    )
    return {
        label: planner.run(
            DynamicConsolidation(name=label, predictor=predictor)
        )
        for label, predictor in ladder
    }


def run_tail_overlap_ablation(
    key: str,
    settings: Optional[ExperimentSettings] = None,
    *,
    overlaps: Sequence[float] = (0.0, 0.25, 0.55, 0.75, 1.0),
) -> Dict[str, EmulationResult]:
    """Stochastic consolidation across tail-overlap factors.

    Includes the vanilla (max-sizing) reference under key ``vanilla``.
    """
    settings = settings or ExperimentSettings()
    traces = generate_datacenter(key, scale=settings.scale)
    pool = settings.build_pool(traces)
    planner = ConsolidationPlanner(
        traces=traces,
        datacenter=pool,
        config=settings.planning_config(),
        evaluation_days=settings.evaluation_days,
    )
    results: Dict[str, EmulationResult] = {
        "vanilla": planner.run(SemiStaticConsolidation(name="vanilla"))
    }
    for overlap in overlaps:
        label = f"overlap={overlap:.2f}"
        results[label] = planner.run(
            StochasticConsolidation(name=label, tail_overlap_factor=overlap)
        )
    return results
