"""Plain-text report formatting for experiment outputs.

Benches and the CLI print the same rows the paper's figures plot; these
helpers render aligned ASCII tables and CDF tabulations so the output is
directly comparable against the paper's descriptions.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.analysis.cdf import EmpiricalCDF

__all__ = ["format_table", "format_cdf", "format_mapping"]


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned ASCII table."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_cdf(
    label: str, cdf: EmpiricalCDF, grid: Sequence[float]
) -> str:
    """Tabulate a CDF on a grid: the text form of one figure line."""
    points = "  ".join(
        f"F({_render_cell(float(x))})={cdf.at(float(x)):.2f}" for x in grid
    )
    return f"{label}: {points}"


def format_mapping(
    title: str, mapping: Mapping[str, float], *, digits: int = 3
) -> str:
    """One-line rendering of a {label: value} result."""
    body = "  ".join(
        f"{key}={value:.{digits}f}" for key, value in mapping.items()
    )
    return f"{title}: {body}"
