"""Runtime validation of the reproduction against the paper's bands.

``repro-vmc validate`` re-measures every calibrated quantity (Section-4
statistics, Observation 4, the Fig. 7 orderings) and checks it against
:mod:`repro.experiments.paper_targets` — the same bands the test suite
pins, but available as a library call, so downstream users who change
seeds, scales, or generator parameters can see exactly which published
claims still hold.

Each check yields a :class:`ValidationCheck` with the measured value,
the band, and a verdict; :class:`ValidationReport` aggregates them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.burstiness import analyze_burstiness
from repro.analysis.resource_ratio import analyze_resource_ratio
from repro.experiments import paper_targets as targets
from repro.experiments.comparison import (
    SCHEME_DYNAMIC,
    SCHEME_STOCHASTIC,
    run_comparison,
)
from repro.experiments.settings import ExperimentSettings
from repro.migration.reliability import recommended_reservation
from repro.workloads.appmodel import OLIO_MODEL
from repro.workloads.datacenters import ALL_DATACENTERS, generate_datacenter

__all__ = ["ValidationCheck", "ValidationReport", "validate_reproduction"]


@dataclass(frozen=True)
class ValidationCheck:
    """One measured quantity against its paper band."""

    name: str
    measured: float
    band: Tuple[float, float]
    source: str

    @property
    def passed(self) -> bool:
        low, high = self.band
        return low <= self.measured <= high

    def describe(self) -> str:
        low, high = self.band
        verdict = "ok" if self.passed else "OUT OF BAND"
        return (
            f"[{verdict}] {self.name}: {self.measured:.3f} "
            f"(band {low:.3f}..{high:.3f}; {self.source})"
        )


@dataclass(frozen=True)
class ValidationReport:
    """All checks for one validation run."""

    scale: float
    checks: Tuple[ValidationCheck, ...]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> Tuple[ValidationCheck, ...]:
        return tuple(c for c in self.checks if not c.passed)

    def describe(self) -> str:
        lines = [check.describe() for check in self.checks]
        lines.append(
            f"{len(self.checks) - len(self.failures)}/{len(self.checks)} "
            f"checks inside the paper's bands (scale {self.scale})"
        )
        return "\n".join(lines)


def _trace_checks(settings: ExperimentSettings) -> List[ValidationCheck]:
    checks: List[ValidationCheck] = []
    for config in ALL_DATACENTERS:
        key = config.key
        trace_set = generate_datacenter(key, scale=settings.scale)
        burstiness = analyze_burstiness(trace_set, intervals_hours=(1.0,))
        ratio = analyze_resource_ratio(trace_set)
        checks.extend(
            [
                ValidationCheck(
                    name=f"{key}: mean CPU utilization",
                    measured=trace_set.mean_cpu_utilization(),
                    band=targets.MEAN_CPU_UTILIZATION[key],
                    source="Table 2",
                ),
                ValidationCheck(
                    name=f"{key}: CPU P2A median (1h)",
                    measured=burstiness.median_p2a("cpu", 1.0),
                    band=targets.CPU_P2A_MEDIAN_1H[key],
                    source="Fig 2 / Obs 1",
                ),
                ValidationCheck(
                    name=f"{key}: CPU CoV>=1 fraction",
                    measured=burstiness.cov["cpu"].fraction_above(1.0),
                    band=targets.CPU_COV_HEAVY_TAILED_FRACTION[key],
                    source="Fig 3 / Obs 1",
                ),
                ValidationCheck(
                    name=f"{key}: memory P2A<=1.5 fraction",
                    measured=burstiness.peak_to_average[("memory", 1.0)].at(
                        1.5
                    ),
                    band=targets.MEMORY_P2A_LE_1_5_FRACTION[key],
                    source="Fig 4 / Obs 2",
                ),
                ValidationCheck(
                    name=f"{key}: memory CoV>=1 fraction",
                    measured=burstiness.cov["memory"].fraction_above(1.0),
                    band=targets.MEMORY_COV_HEAVY_TAILED_FRACTION[key],
                    source="Fig 5 / Obs 2",
                ),
                ValidationCheck(
                    name=f"{key}: memory-constrained interval fraction",
                    measured=ratio.fraction_memory_constrained,
                    band=targets.MEMORY_CONSTRAINED_FRACTION[key],
                    source="Fig 6 / Obs 3",
                ),
            ]
        )
    return checks


def _comparison_checks(settings: ExperimentSettings) -> List[ValidationCheck]:
    checks: List[ValidationCheck] = []
    slack = targets.SPACE_ORDERING["stochastic_not_worse_than_dynamic_slack"]
    exceptions = targets.SPACE_ORDERING["dynamic_beats_vanilla_except"]
    for config in ALL_DATACENTERS:
        key = config.key
        comparison = run_comparison(key, settings)
        space = comparison.normalized_space_cost()
        power = comparison.normalized_power_cost()
        checks.append(
            ValidationCheck(
                name=f"{key}: stochastic space vs vanilla",
                measured=space[SCHEME_STOCHASTIC],
                band=targets.STOCHASTIC_SPACE_VS_VANILLA[key],
                source="Fig 7",
            )
        )
        checks.append(
            ValidationCheck(
                name=f"{key}: stochastic-vs-dynamic space gap",
                measured=space[SCHEME_STOCHASTIC] - space[SCHEME_DYNAMIC],
                band=(-10.0, slack),
                source="Fig 7 ordering",
            )
        )
        dynamic_band = (
            (1.0, 10.0) if key in exceptions else (0.0, 1.0)
        )
        checks.append(
            ValidationCheck(
                name=f"{key}: dynamic space vs vanilla",
                measured=space[SCHEME_DYNAMIC],
                band=dynamic_band,
                source="Fig 7 ordering",
            )
        )
        checks.append(
            ValidationCheck(
                name=f"{key}: dynamic/stochastic power ratio",
                measured=power[SCHEME_DYNAMIC] / power[SCHEME_STOCHASTIC],
                band=targets.DYNAMIC_POWER_VS_STOCHASTIC[key],
                source="Fig 7 power",
            )
        )
    return checks


def _global_checks() -> List[ValidationCheck]:
    throughput, cpu_factor, memory_factor = OLIO_MODEL.scaling_factors(10, 60)
    return [
        ValidationCheck(
            name="migration reservation",
            measured=recommended_reservation(),
            band=targets.MIGRATION_RESERVATION,
            source="Obs 4",
        ),
        ValidationCheck(
            name="olio CPU scaling factor",
            measured=cpu_factor,
            band=targets.OLIO_SCALING["cpu_factor"],
            source="§4.1",
        ),
        ValidationCheck(
            name="olio memory scaling factor",
            measured=memory_factor,
            band=targets.OLIO_SCALING["memory_factor"],
            source="§4.1",
        ),
    ]


def validate_reproduction(
    settings: Optional[ExperimentSettings] = None,
    *,
    include_comparison: bool = True,
) -> ValidationReport:
    """Run every paper-band check and return the aggregated report.

    ``include_comparison=False`` limits validation to the (fast)
    trace-level statistics plus the global checks — useful when only
    generator parameters changed.
    """
    settings = settings or ExperimentSettings()
    checks = _trace_checks(settings)
    checks.extend(_global_checks())
    if include_comparison:
        checks.extend(_comparison_checks(settings))
    return ValidationReport(scale=settings.scale, checks=tuple(checks))
