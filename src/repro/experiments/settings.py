"""Experimental settings (paper Table 3) and shared experiment plumbing.

| Metric                         | Paper value |
|--------------------------------|-------------|
| Experiment duration            | 14 days     |
| Dynamic consolidation interval | 2 hours     |
| Number of intervals            | 168         |
| CPU reserved for VMotion       | 20%         |
| Memory reserved for VMotion    | 20%         |

:class:`ExperimentSettings` additionally carries a ``scale`` factor so
the same experiments run at laptop speed (scaled-down server counts with
identical per-server statistics) or at the paper's full size.  The
default scale comes from the ``REPRO_SCALE`` environment variable
(default 0.25); set ``REPRO_SCALE=1.0`` to reproduce at full size.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.core.base import PlanningConfig
from repro.exceptions import ConfigurationError
from repro.infrastructure.costs import PowerCostModel, SpaceCostModel
from repro.infrastructure.datacenter import Datacenter, build_target_pool
from repro.workloads.trace import TraceSet

__all__ = [
    "ExperimentSettings",
    "DEFAULT_SCALE_ENV",
    "default_scale",
    "UTILIZATION_BOUND_SWEEP",
]

DEFAULT_SCALE_ENV = "REPRO_SCALE"

#: The utilization bounds swept in the sensitivity analysis (Figs. 13-16).
UTILIZATION_BOUND_SWEEP: Tuple[float, ...] = (
    0.70,
    0.75,
    0.80,
    0.85,
    0.90,
    0.95,
    1.00,
)


def default_scale() -> float:
    """Experiment scale from the environment (``REPRO_SCALE``)."""
    raw = os.environ.get(DEFAULT_SCALE_ENV, "0.25")
    try:
        scale = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{DEFAULT_SCALE_ENV}={raw!r} is not a number"
        ) from None
    if scale <= 0:
        raise ConfigurationError(f"{DEFAULT_SCALE_ENV} must be > 0, got {scale}")
    return scale


@dataclass(frozen=True)
class ExperimentSettings:
    """Everything Section-5 experiments need, with Table-3 defaults."""

    evaluation_days: int = 14
    interval_hours: float = 2.0
    reservation: float = 0.20
    scale: float = field(default_factory=default_scale)
    space_cost: SpaceCostModel = field(default_factory=SpaceCostModel)
    power_cost: PowerCostModel = field(default_factory=PowerCostModel)
    #: Target pool size as a multiple of source-server count; generous so
    #: the pool never constrains any plan.
    pool_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.evaluation_days <= 0:
            raise ConfigurationError("evaluation_days must be > 0")
        if not 0 <= self.reservation < 1:
            raise ConfigurationError(
                f"reservation must be in [0, 1), got {self.reservation}"
            )
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {self.scale}")
        if self.pool_fraction <= 0:
            raise ConfigurationError("pool_fraction must be > 0")

    @property
    def utilization_bound(self) -> float:
        return 1.0 - self.reservation

    @property
    def n_intervals(self) -> int:
        return int(self.evaluation_days * 24 / self.interval_hours)

    def planning_config(
        self, utilization_bound: "float | None" = None
    ) -> PlanningConfig:
        return PlanningConfig(
            utilization_bound=(
                self.utilization_bound
                if utilization_bound is None
                else utilization_bound
            ),
            interval_hours=self.interval_hours,
        )

    def with_reservation(self, reservation: float) -> "ExperimentSettings":
        return replace(self, reservation=reservation)

    def build_pool(self, trace_set: TraceSet) -> Datacenter:
        """A homogeneous HS23 pool large enough for any plan."""
        host_count = max(12, int(len(trace_set) * self.pool_fraction))
        return build_target_pool(f"{trace_set.name}-pool", host_count)
