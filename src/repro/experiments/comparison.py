"""Section-5 baseline comparison (Figs. 7-12).

:func:`run_comparison` executes the paper's experiment for one
datacenter: generate traces, build an HS23 target pool, run the three
consolidation variants over the same planning/evaluation split, emulate,
and package the figure data.  :func:`run_all` covers all four
datacenters (the full Fig. 7 grid).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.base import ConsolidationAlgorithm
from repro.core.dynamic import DynamicConsolidation
from repro.core.planner import ConsolidationPlanner
from repro.core.semistatic import SemiStaticConsolidation
from repro.core.stochastic import StochasticConsolidation
from repro.emulator.results import EmulationResult
from repro.experiments.settings import ExperimentSettings
from repro.infrastructure.costs import normalize
from repro.workloads.datacenters import ALL_DATACENTERS, generate_datacenter
from repro.workloads.trace import TraceSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner import ExperimentRunner

__all__ = [
    "SCHEME_VANILLA",
    "SCHEME_STOCHASTIC",
    "SCHEME_DYNAMIC",
    "default_algorithms",
    "ComparisonResult",
    "run_comparison",
    "run_all",
]

SCHEME_VANILLA = "semi-static"
SCHEME_STOCHASTIC = "stochastic"
SCHEME_DYNAMIC = "dynamic"


def default_algorithms() -> Tuple[ConsolidationAlgorithm, ...]:
    """The paper's three compared algorithms (§5.1)."""
    return (
        SemiStaticConsolidation(),
        StochasticConsolidation(),
        DynamicConsolidation(),
    )


@dataclass(frozen=True)
class ComparisonResult:
    """All Section-5 outputs for one datacenter."""

    workload: str
    settings: ExperimentSettings
    results: Mapping[str, EmulationResult]

    def normalized_space_cost(self) -> Dict[str, float]:
        """Fig. 7 left: space cost normalized to vanilla semi-static."""
        costs = {
            name: self.settings.space_cost.cost(result.provisioned_servers)
            for name, result in self.results.items()
        }
        return normalize(costs, SCHEME_VANILLA)

    def normalized_power_cost(self) -> Dict[str, float]:
        """Fig. 7 right: power cost normalized to vanilla semi-static."""
        costs = {
            name: self.settings.power_cost.cost(result.energy_kwh)
            for name, result in self.results.items()
        }
        return normalize(costs, SCHEME_VANILLA)

    def contention_fractions(self) -> Dict[str, float]:
        """Fig. 8: fraction of server-hours with contention per scheme."""
        return {
            name: result.contention_time_fraction()
            for name, result in self.results.items()
        }

    def dynamic(self) -> EmulationResult:
        return self.results[SCHEME_DYNAMIC]

    def summary_rows(self) -> Tuple[Dict[str, object], ...]:
        space = self.normalized_space_cost()
        power = self.normalized_power_cost()
        rows = []
        for name, result in self.results.items():
            rows.append(
                {
                    "workload": self.workload,
                    "scheme": name,
                    "servers": result.provisioned_servers,
                    "space_norm": space[name],
                    "power_norm": power[name],
                    "contention": result.contention_time_fraction(),
                    "migrations": result.total_migrations(),
                    "mean_active_fraction": float(
                        result.active_fraction_series().mean()
                    ),
                }
            )
        return tuple(rows)


def run_comparison(
    datacenter_key: str,
    settings: Optional[ExperimentSettings] = None,
    *,
    algorithms: Optional[Sequence[ConsolidationAlgorithm]] = None,
    trace_set: Optional[TraceSet] = None,
) -> ComparisonResult:
    """Run the three-scheme comparison for one datacenter."""
    settings = settings or ExperimentSettings()
    if trace_set is None:
        trace_set = generate_datacenter(datacenter_key, scale=settings.scale)
    pool = settings.build_pool(trace_set)
    planner = ConsolidationPlanner(
        traces=trace_set,
        datacenter=pool,
        config=settings.planning_config(),
        evaluation_days=settings.evaluation_days,
    )
    results = planner.compare(list(algorithms or default_algorithms()))
    return ComparisonResult(
        workload=trace_set.name, settings=settings, results=results
    )


def run_all(
    settings: Optional[ExperimentSettings] = None,
    *,
    runner: Optional["ExperimentRunner"] = None,
) -> Dict[str, ComparisonResult]:
    """Run the comparison for all four datacenters (the Fig. 7 grid).

    With a :class:`~repro.runner.ExperimentRunner`, the four datacenters
    fan out over its process pool and results come back from (and land
    in) its content-addressed cache; without one, the grid runs serially
    in-process exactly as before.
    """
    settings = settings or ExperimentSettings()
    if runner is not None:
        from repro.runner.tasks import comparison_sweep

        report = runner.run(comparison_sweep(settings))
        return {
            config.key: result
            for config, result in zip(ALL_DATACENTERS, report.results)
        }
    return {
        config.key: run_comparison(config.key, settings)
        for config in ALL_DATACENTERS
    }
