"""Per-figure experiment registry.

Every table and figure of the paper's evaluation maps to one runner that
executes the experiment and returns the printable report.  The CLI
(``repro-vmc figure fig7``) and the benchmark suite both dispatch
through this registry, so there is exactly one implementation per
figure.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.exceptions import ConfigurationError
from repro.experiments import traceanalysis
from repro.experiments.comparison import ComparisonResult
from repro.experiments.formatting import format_cdf, format_table
from repro.experiments.settings import ExperimentSettings
from repro.migration.reliability import recommended_reservation, reliability_sweep
from repro.workloads.appmodel import OLIO_MODEL

__all__ = ["FIGURES", "run_figure", "list_figures"]

FigureRunner = Callable[[ExperimentSettings], str]


def _fig1(settings: ExperimentSettings) -> str:
    samples = traceanalysis.sample_bursty_servers(scale=settings.scale)
    rows = [
        (s.vm_id, f"{s.average:.3f}", f"{s.peak:.3f}") for s in samples
    ]
    table = format_table(["server", "avg_util", "peak_util"], rows)
    return (
        "Fig 1 - Burstiness in server workloads (Banking samples)\n"
        "Paper: average utilization < 5%, peaks > 50%\n" + table
    )


def _burstiness_figure(
    settings: ExperimentSettings, resource: str, metric: str, title: str
) -> str:
    reports = traceanalysis.burstiness_by_datacenter(scale=settings.scale)
    lines = [title]
    for key, report in reports.items():
        if metric == "p2a":
            for interval in (1.0, 2.0, 4.0):
                cdf = report.peak_to_average[(resource, interval)]
                lines.append(
                    format_cdf(
                        f"{key} ({interval:.0f}h)",
                        cdf,
                        traceanalysis.P2A_GRID,
                    )
                )
        else:
            lines.append(
                format_cdf(key, report.cov[resource], traceanalysis.COV_GRID)
            )
    return "\n".join(lines)


def _fig2(settings: ExperimentSettings) -> str:
    return _burstiness_figure(
        settings, "cpu", "p2a", "Fig 2 - CDF of CPU peak-to-average ratio"
    )


def _fig3(settings: ExperimentSettings) -> str:
    return _burstiness_figure(
        settings, "cpu", "cov", "Fig 3 - CDF of CPU coefficient of variation"
    )


def _fig4(settings: ExperimentSettings) -> str:
    return _burstiness_figure(
        settings,
        "memory",
        "p2a",
        "Fig 4 - CDF of memory peak-to-average ratio",
    )


def _fig5(settings: ExperimentSettings) -> str:
    return _burstiness_figure(
        settings,
        "memory",
        "cov",
        "Fig 5 - CDF of memory coefficient of variation",
    )


def _fig6(settings: ExperimentSettings) -> str:
    reports = traceanalysis.resource_ratio_by_datacenter(scale=settings.scale)
    lines = [
        "Fig 6 - CDF of aggregate CPU:memory demand ratio "
        "(HS23 reference = 160 RPE2/GB)"
    ]
    for key, report in reports.items():
        lines.append(format_cdf(key, report.cdf, traceanalysis.RATIO_GRID))
        lines.append(
            f"  -> memory-constrained fraction: "
            f"{report.fraction_memory_constrained:.2f}"
        )
    return "\n".join(lines)


def _table2(settings: ExperimentSettings) -> str:
    rows = [
        (
            r["name"],
            r["industry"],
            r["paper_servers"],
            r["generated_servers"],
            f"{r['paper_cpu_util']:.0%}",
            f"{r['measured_cpu_util']:.1%}",
        )
        for r in traceanalysis.table2_summary(scale=settings.scale)
    ]
    return "Table 2 - Workload types\n" + format_table(
        ["dc", "industry", "paper_n", "generated_n", "paper_util", "measured"],
        rows,
    )


def _obs4(settings: ExperimentSettings) -> str:
    points = reliability_sweep([0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95])
    rows = [
        (
            f"{p.host_cpu_util:.2f}",
            f"{p.success_rate:.3f}",
            f"{p.mean_duration_s:.0f}",
            f"{p.p99_duration_s:.0f}",
            "yes" if p.reliable() else "no",
        )
        for p in points
    ]
    reservation = recommended_reservation()
    return (
        "Obs 4 - Live-migration reliability vs host utilization\n"
        + format_table(
            ["host_util", "success", "mean_s", "p99_s", "reliable"], rows
        )
        + f"\nRecommended reservation: {reservation:.0%} (paper: 20%)"
    )


#: Figs. 7-12 all derive from the same three-scheme experiment; memoize
#: it per settings so a full report pays for it once.  Settings are
#: frozen (hashable); the memo is tiny (a handful of settings per
#: process).  The on-disk runner cache sits underneath, so even a fresh
#: process reuses previously-computed comparisons.
_COMPARISON_CACHE: "Dict[ExperimentSettings, Dict[str, ComparisonResult]]" = {}


def _comparison_rows(settings: ExperimentSettings) -> Dict[str, ComparisonResult]:
    cached = _COMPARISON_CACHE.get(settings)
    if cached is None:
        from repro.runner import comparison_task, execute_cached
        from repro.workloads.datacenters import ALL_DATACENTERS

        cached = {
            config.key: execute_cached(comparison_task(config.key, settings))
            for config in ALL_DATACENTERS
        }
        _COMPARISON_CACHE[settings] = cached
    return cached


def _fig7(settings: ExperimentSettings) -> str:
    comparisons = _comparison_rows(settings)
    rows = []
    for key, comparison in comparisons.items():
        space = comparison.normalized_space_cost()
        power = comparison.normalized_power_cost()
        for scheme in space:
            rows.append(
                (key, scheme, f"{space[scheme]:.2f}", f"{power[scheme]:.2f}")
            )
    return (
        "Fig 7 - Infrastructure cost, normalized to vanilla semi-static\n"
        + format_table(["workload", "scheme", "space", "power"], rows)
    )


def _fig8(settings: ExperimentSettings) -> str:
    comparisons = _comparison_rows(settings)
    rows = []
    for key, comparison in comparisons.items():
        for scheme, fraction in comparison.contention_fractions().items():
            rows.append((key, scheme, f"{fraction:.4f}"))
    return (
        "Fig 8 - Fraction of server-hours with contention "
        "(absence = zero contention)\n"
        + format_table(["workload", "scheme", "contention"], rows)
    )


def _fig9(settings: ExperimentSettings) -> str:
    comparisons = _comparison_rows(settings)
    lines = [
        "Fig 9 - CDF of CPU contention magnitude under dynamic "
        "consolidation (fraction of host capacity)"
    ]
    grid = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0)
    for key, comparison in comparisons.items():
        cdf = comparison.dynamic().cpu_contention_cdf()
        if cdf is None:
            lines.append(f"{key}: no contention (absent line)")
        else:
            lines.append(format_cdf(key, cdf, grid))
    return "\n".join(lines)


def _utilization_figure(settings: ExperimentSettings, peak: bool) -> str:
    comparisons = _comparison_rows(settings)
    which = "peak" if peak else "average"
    grid = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
    lines = [
        f"Fig {'11' if peak else '10'} - CDF of {which} CPU utilization "
        "per provisioned server"
    ]
    for key, comparison in comparisons.items():
        for scheme, result in comparison.results.items():
            cdf = (
                result.peak_utilization_cdf()
                if peak
                else result.average_utilization_cdf()
            )
            lines.append(format_cdf(f"{key}/{scheme}", cdf, grid))
    return "\n".join(lines)


def _fig10(settings: ExperimentSettings) -> str:
    return _utilization_figure(settings, peak=False)


def _fig11(settings: ExperimentSettings) -> str:
    return _utilization_figure(settings, peak=True)


def _fig12(settings: ExperimentSettings) -> str:
    comparisons = _comparison_rows(settings)
    grid = (0.2, 0.3, 0.5, 0.7, 0.9, 1.0)
    lines = [
        "Fig 12 - CDF of active-server fraction under dynamic consolidation"
    ]
    for key, comparison in comparisons.items():
        cdf = comparison.dynamic().active_fraction_cdf()
        lines.append(format_cdf(key, cdf, grid))
    return "\n".join(lines)


def _sensitivity_figure(settings: ExperimentSettings, key: str, fig: str) -> str:
    from repro.runner import execute_cached, sensitivity_task

    result = execute_cached(sensitivity_task(key, settings))
    rows = [
        (
            f"{r['utilization_bound']:.2f}",
            r["dynamic_servers"],
            r["semi_static_servers"],
            r["stochastic_servers"],
        )
        for r in result.rows()
    ]
    crossover = result.crossover_bound()
    return (
        f"Fig {fig} - {key}: servers vs utilization bound\n"
        + format_table(
            ["bound", "dynamic", "semi-static", "stochastic"], rows
        )
        + f"\nDynamic matches stochastic at bound: {crossover}"
        + f"\nImprovement over stochastic at bound 1.0: "
        f"{result.improvement_at_full_bound():.0%}"
    )


def _fig13(settings: ExperimentSettings) -> str:
    return _sensitivity_figure(settings, "banking", "13")


def _fig14(settings: ExperimentSettings) -> str:
    return _sensitivity_figure(settings, "airlines", "14")


def _fig15(settings: ExperimentSettings) -> str:
    return _sensitivity_figure(settings, "natural-resources", "15")


def _fig16(settings: ExperimentSettings) -> str:
    return _sensitivity_figure(settings, "beverage", "16")


def _intervals(settings: ExperimentSettings) -> str:
    from repro.experiments.intervals import run_interval_study

    points = run_interval_study("banking", settings)
    rows = [
        (
            f"{p.interval_hours:.0f}h",
            p.provisioned_servers,
            f"{p.energy_kwh:.0f}",
            p.total_migrations,
            f"{p.contention_time_fraction:.5f}",
        )
        for p in points
    ]
    return (
        "Interval-length study (§7): shorter intervals -> smaller "
        "footprint and less energy, at more migrations\n"
        + format_table(
            ["interval", "servers", "energy_kwh", "migrations",
             "contention"],
            rows,
        )
    )


def _ladder(settings: ExperimentSettings) -> str:
    from repro.migration.whatif import MIGRATION_VARIANTS, reservation_ladder

    descriptions = {v.key: v.description for v in MIGRATION_VARIANTS}
    rows = [
        (key, f"{reservation:.0%}", descriptions[key][:60])
        for key, reservation in reservation_ladder()
    ]
    return (
        "Migration-technology ladder (§7 / Obs. 7): required reservation\n"
        + format_table(["technology", "reservation", "description"], rows)
    )


def _verify_emulator(settings: ExperimentSettings) -> str:
    from repro.emulator.verification import (
        DAXPY_MODEL,
        RUBIS_MODEL,
        verify_emulator_accuracy,
    )

    rows = []
    for model in (RUBIS_MODEL, DAXPY_MODEL):
        report = verify_emulator_accuracy(model)
        rows.append(
            (
                report.workload,
                f"{report.mean_error:.2%}",
                f"{report.p99_error:.2%}",
            )
        )
    return (
        "Emulator verification (§5.2; paper: p99 error 5% RuBiS, "
        "2% daxpy)\n"
        + format_table(["workload", "mean_error", "p99_error"], rows)
    )


def _potential(settings: ExperimentSettings) -> str:
    from repro.experiments.potential import potential_gain
    from repro.workloads.datacenters import ALL_DATACENTERS
    from repro.workloads.datacenters import generate_datacenter as _gen

    rows = []
    realized = []
    for config in ALL_DATACENTERS:
        gain = potential_gain(_gen(config.key, scale=settings.scale))
        realized.append(gain.realized_gain)
        rows.append(
            (
                config.key,
                f"{gain.per_server_cpu_gain:.1f}x",
                f"{gain.aggregate_cpu_gain:.1f}x",
                f"{gain.memory_only_gain:.2f}x",
                f"{gain.realized_gain:.2f}x",
            )
        )
    mean_realized = sum(realized) / len(realized)
    return (
        "Potential-savings study (§1.1 vs §1.3): per-server CPU promise "
        "vs realized dual-resource gain\n"
        + format_table(
            ["workload", "per_server_cpu", "aggregate_cpu", "memory",
             "realized"],
            rows,
        )
        + f"\nMean realized gain: {mean_realized:.2f}x "
        "(paper: 10X deflates to ~1.5X)"
    )


def _olio(settings: ExperimentSettings) -> str:
    rows = [
        (f"{t:.0f}", f"{cpu:.2f}", f"{mem:.2f}")
        for t, cpu, mem in OLIO_MODEL.sweep([10, 20, 30, 40, 50, 60])
    ]
    throughput, cpu_factor, memory_factor = OLIO_MODEL.scaling_factors(10, 60)
    return (
        "Olio scaling aside (§4.1): throughput -> CPU cores / memory GB\n"
        + format_table(["ops_per_s", "cpu_cores", "memory_gb"], rows)
        + f"\n{throughput:.0f}x throughput -> {cpu_factor:.1f}x CPU, "
        f"{memory_factor:.1f}x memory (paper: 7.9x / 3x)"
    )


FIGURES: Mapping[str, FigureRunner] = {
    "table2": _table2,
    "fig1": _fig1,
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "obs4": _obs4,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
    "olio": _olio,
    "potential": _potential,
    "intervals": _intervals,
    "migration-ladder": _ladder,
    "verify-emulator": _verify_emulator,
}


def list_figures() -> "tuple[str, ...]":
    return tuple(FIGURES)


def run_figure(
    figure_id: str, settings: Optional[ExperimentSettings] = None
) -> str:
    """Run one figure/table experiment and return its text report."""
    runner = FIGURES.get(figure_id.lower())
    if runner is None:
        known = ", ".join(FIGURES)
        raise ConfigurationError(
            f"unknown figure {figure_id!r}; known: {known}"
        )
    return runner(settings or ExperimentSettings())
