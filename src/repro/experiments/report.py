"""Full-reproduction report generator.

``repro-vmc report`` runs every registered figure/table experiment and
assembles one markdown document — the machine-generated counterpart of
``EXPERIMENTS.md``.  Useful for regenerating the measured numbers after
a change, or for producing a full-scale (``REPRO_SCALE=1.0``) record.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro import __version__
from repro.exceptions import ConfigurationError
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.settings import ExperimentSettings

__all__ = ["generate_report", "DEFAULT_REPORT_ORDER"]

#: Paper order: Table 2, the Section-4 figures, Obs 4, the Section-5
#: figures, then the asides and extension studies.
DEFAULT_REPORT_ORDER = (
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "obs4",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "olio",
    "potential",
    "verify-emulator",
    "intervals",
    "migration-ladder",
)


def generate_report(
    settings: Optional[ExperimentSettings] = None,
    *,
    figures: Optional[Sequence[str]] = None,
) -> str:
    """Run the selected experiments and return one markdown report."""
    settings = settings or ExperimentSettings()
    selected = tuple(figures) if figures else DEFAULT_REPORT_ORDER
    unknown = [f for f in selected if f.lower() not in FIGURES]
    if unknown:
        raise ConfigurationError(
            f"unknown figures requested: {', '.join(unknown)}"
        )
    sections = [
        "# Reproduction report — Virtual Machine Consolidation in the Wild",
        "",
        f"- library version: {__version__}",
        f"- datacenter scale: {settings.scale}",
        f"- evaluation window: {settings.evaluation_days} days, "
        f"{settings.interval_hours:.0f} h intervals "
        f"({settings.n_intervals} intervals)",
        f"- live-migration reservation: {settings.reservation:.0%}",
        "",
    ]
    for figure_id in selected:
        started = time.perf_counter()
        body = run_figure(figure_id, settings)
        elapsed = time.perf_counter() - started
        sections.append(f"## {figure_id}")
        sections.append("")
        sections.append("```text")
        sections.append(body)
        sections.append("```")
        sections.append(f"*({elapsed:.1f}s)*")
        sections.append("")
    return "\n".join(sections)
