"""Full-reproduction report generator.

``repro-vmc report`` runs every registered figure/table experiment and
assembles one markdown document — the machine-generated counterpart of
``EXPERIMENTS.md``.  Useful for regenerating the measured numbers after
a change, or for producing a full-scale (``REPRO_SCALE=1.0``) record.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Sequence

from repro import __version__
from repro.exceptions import ConfigurationError
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.settings import ExperimentSettings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner import ExperimentRunner

__all__ = ["generate_report", "DEFAULT_REPORT_ORDER"]

#: Paper order: Table 2, the Section-4 figures, Obs 4, the Section-5
#: figures, then the asides and extension studies.
DEFAULT_REPORT_ORDER = (
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "obs4",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "olio",
    "potential",
    "verify-emulator",
    "intervals",
    "migration-ladder",
)


def generate_report(
    settings: Optional[ExperimentSettings] = None,
    *,
    figures: Optional[Sequence[str]] = None,
    runner: Optional["ExperimentRunner"] = None,
) -> str:
    """Run the selected experiments and return one markdown report.

    With a :class:`~repro.runner.ExperimentRunner`, the expensive
    shared experiments (the comparison and sensitivity sweeps behind
    Figs. 7-16) are computed first across its process pool, landing in
    its cache; the per-figure formatting then runs serially and reads
    the warmed cache.  Without one, everything runs in-process.
    """
    settings = settings or ExperimentSettings()
    selected = tuple(figures) if figures else DEFAULT_REPORT_ORDER
    unknown = [f for f in selected if f.lower() not in FIGURES]
    if unknown:
        raise ConfigurationError(
            f"unknown figures requested: {', '.join(unknown)}"
        )
    if runner is not None:
        entries = _run_with_runner(settings, selected, runner)
    else:
        entries = []
        for figure_id in selected:
            started = time.perf_counter()
            body = run_figure(figure_id, settings)
            entries.append((figure_id, body, time.perf_counter() - started))
    sections = [
        "# Reproduction report — Virtual Machine Consolidation in the Wild",
        "",
        f"- library version: {__version__}",
        f"- datacenter scale: {settings.scale}",
        f"- evaluation window: {settings.evaluation_days} days, "
        f"{settings.interval_hours:.0f} h intervals "
        f"({settings.n_intervals} intervals)",
        f"- live-migration reservation: {settings.reservation:.0%}",
        "",
    ]
    for figure_id, body, elapsed in entries:
        sections.append(f"## {figure_id}")
        sections.append("")
        sections.append("```text")
        sections.append(body)
        sections.append("```")
        sections.append(f"*({elapsed:.1f}s)*")
        sections.append("")
    return "\n".join(sections)


#: Figure ids whose body replays the shared three-scheme comparison.
_COMPARISON_FIGURES = frozenset(
    {"fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}
)

#: Sensitivity figures and the datacenter each one sweeps.
_SENSITIVITY_FIGURES = {
    "fig13": "banking",
    "fig14": "airlines",
    "fig15": "natural-resources",
    "fig16": "beverage",
}


def _run_with_runner(
    settings: ExperimentSettings,
    selected: Sequence[str],
    runner: "ExperimentRunner",
) -> "list[tuple[str, str, float]]":
    """Fan the report's figures out over the runner's process pool.

    The comparison and sensitivity sweeps are prewarmed first so the
    figure tasks that share them read one cached copy instead of racing
    to recompute it in every worker.
    """
    from repro.runner import (
        comparison_sweep,
        figure_task,
        sensitivity_task,
    )

    wanted = {figure_id.lower() for figure_id in selected}
    prewarm = []
    if wanted & _COMPARISON_FIGURES:
        prewarm.extend(comparison_sweep(settings))
    for figure_id, datacenter in _SENSITIVITY_FIGURES.items():
        if figure_id in wanted:
            prewarm.append(sensitivity_task(datacenter, settings))
    if prewarm:
        runner.run(prewarm)
    report = runner.run(
        [figure_task(figure_id, settings) for figure_id in selected]
    )
    return [
        (figure_id, str(body), stat.seconds)
        for figure_id, body, stat in zip(
            selected, report.results, report.stats
        )
    ]
