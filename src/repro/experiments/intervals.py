"""Consolidation-interval length study (paper §7, "Enabling Shorter
Consolidation Intervals").

"Improvements in network bandwidth as well as advances in live migration
implementation can allow shorter dynamic consolidation intervals to
become practical.  This will enable more fine-grained consolidation,
reducing the overall hardware footprint as well as providing more
opportunities for saving power."

:func:`run_interval_study` re-runs dynamic consolidation at several
interval lengths over the same traces and reports servers, energy,
migrations and contention per interval length — quantifying the §7
claim (and its cost: shorter intervals mean more migrations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.base import PlanningConfig
from repro.core.dynamic import DynamicConsolidation
from repro.core.planner import ConsolidationPlanner
from repro.experiments.settings import ExperimentSettings
from repro.workloads.datacenters import generate_datacenter
from repro.workloads.trace import TraceSet

__all__ = ["IntervalPoint", "run_interval_study", "DEFAULT_INTERVAL_SWEEP"]

#: 1 h is the shortest the hourly traces support; 2 h is the paper's
#: baseline; 4/8 h approximate increasingly semi-static behaviour.
DEFAULT_INTERVAL_SWEEP: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)


@dataclass(frozen=True)
class IntervalPoint:
    """Dynamic consolidation outcome at one interval length."""

    interval_hours: float
    provisioned_servers: int
    energy_kwh: float
    total_migrations: int
    contention_time_fraction: float
    mean_active_fraction: float


def run_interval_study(
    datacenter_key: str,
    settings: Optional[ExperimentSettings] = None,
    *,
    intervals_hours: Sequence[float] = DEFAULT_INTERVAL_SWEEP,
    trace_set: Optional[TraceSet] = None,
) -> Tuple[IntervalPoint, ...]:
    """Sweep the dynamic consolidation interval for one datacenter."""
    settings = settings or ExperimentSettings()
    if trace_set is None:
        trace_set = generate_datacenter(datacenter_key, scale=settings.scale)
    pool = settings.build_pool(trace_set)
    points = []
    for interval in intervals_hours:
        planner = ConsolidationPlanner(
            traces=trace_set,
            datacenter=pool,
            config=PlanningConfig(
                utilization_bound=settings.utilization_bound,
                interval_hours=float(interval),
            ),
            evaluation_days=settings.evaluation_days,
        )
        result = planner.run(DynamicConsolidation())
        points.append(
            IntervalPoint(
                interval_hours=float(interval),
                provisioned_servers=result.provisioned_servers,
                energy_kwh=result.energy_kwh,
                total_migrations=result.total_migrations(),
                contention_time_fraction=result.contention_time_fraction(),
                mean_active_fraction=float(
                    result.active_fraction_series().mean()
                ),
            )
        )
    return tuple(points)
