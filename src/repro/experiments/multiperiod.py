"""Multi-period study: static vs semi-static consolidation (paper §2.2).

The paper's taxonomy: *static* consolidation places once, sized for the
workload's lifetime peak; *semi-static* "allows higher resource
utilization by allowing consolidation to be performed at coarse-grained
intervals (e.g., once a month or once a week)", re-sizing from the most
recent window and relocating during planned downtime.

The baseline experiment evaluates a single 14-day period, where the two
coincide; their difference only shows when demand *evolves* across
periods.  This study overlays a shared seasonal factor (think retail
quarters or project phases) on a generated datacenter and rolls a
multi-period window:

* **static** — one plan from the first history window, sized at peak
  with a provisioning margin, held forever;
* **semi-static** — re-planned at every period boundary from the
  immediately preceding period (the paper's re-size + relocate cycle).

Semi-static tracks the season down (fewer active servers in the
trough); static pays the lifetime peak the whole time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.base import PlanningConfig, PlanningContext
from repro.core.dynamic import DynamicConsolidation
from repro.core.semistatic import SemiStaticConsolidation
from repro.core.static import StaticConsolidation
from repro.emulator.emulator import ConsolidationEmulator
from repro.emulator.results import EmulationResult
from repro.emulator.schedule import PlacementSchedule, ScheduledPlacement
from repro.exceptions import ConfigurationError
from repro.experiments.settings import ExperimentSettings
from repro.workloads.datacenters import generate_datacenter
from repro.workloads.trace import (
    ResourceTrace,
    ServerTrace,
    TraceSet,
)

__all__ = ["MultiPeriodResult", "apply_seasonal_drift", "run_multiperiod"]


def apply_seasonal_drift(
    trace_set: TraceSet,
    *,
    amplitude: float = 0.4,
    period_days: float = 56.0,
    phase: float = 0.0,
) -> TraceSet:
    """Overlay a shared seasonal CPU factor on a trace set.

    ``factor(t) = 1 + amplitude * sin(2*pi*t/period + phase)`` multiplies
    every server's CPU utilization (clipped at the source capacity);
    memory keeps its usual muted response (half the relative swing,
    Obs. 2's sub-linearity).
    """
    if not 0 <= amplitude < 1:
        raise ConfigurationError(
            f"amplitude must be in [0, 1), got {amplitude}"
        )
    if period_days <= 0:
        raise ConfigurationError(
            f"period_days must be > 0, got {period_days}"
        )
    hours = np.arange(trace_set.n_points)
    factor = 1.0 + amplitude * np.sin(
        2.0 * np.pi * hours / (period_days * 24.0) + phase
    )
    memory_factor = 1.0 + (factor - 1.0) * 0.5
    drifted = TraceSet(name=trace_set.name)
    for trace in trace_set:
        cpu = np.clip(trace.cpu_util.values * factor, 0.0, 1.0)
        memory = np.clip(
            trace.memory_gb.values * memory_factor,
            0.0,
            trace.vm.memory_config_gb,
        )
        drifted.add(
            ServerTrace(
                vm=trace.vm,
                source_spec=trace.source_spec,
                cpu_util=ResourceTrace(cpu, unit="fraction"),
                memory_gb=ResourceTrace(memory, unit="GB"),
            )
        )
    return drifted


@dataclass(frozen=True)
class MultiPeriodResult:
    """Static vs rolling semi-static over several re-planning periods."""

    workload: str
    n_periods: int
    period_days: int
    static: EmulationResult
    semi_static: EmulationResult
    semi_static_servers_per_period: Tuple[int, ...]
    #: Present only when the study also ran the dynamic tier.
    dynamic: Optional[EmulationResult] = None

    @property
    def static_servers(self) -> int:
        return self.static.provisioned_servers

    @property
    def energy_saving(self) -> float:
        """Semi-static's energy saving over static across the horizon."""
        if self.static.energy_kwh == 0:
            return 0.0
        return 1.0 - self.semi_static.energy_kwh / self.static.energy_kwh


def run_multiperiod(
    datacenter_key: str,
    settings: Optional[ExperimentSettings] = None,
    *,
    n_periods: int = 4,
    period_days: int = 14,
    seasonal_amplitude: float = 0.4,
    include_dynamic: bool = False,
) -> MultiPeriodResult:
    """Run the static vs semi-static multi-period comparison.

    With ``include_dynamic`` the study also runs dynamic consolidation
    over the whole horizon (2 h intervals, migration reservation),
    completing the paper's §2.2 taxonomy on one seasonal workload.
    """
    settings = settings or ExperimentSettings()
    if n_periods < 2:
        raise ConfigurationError(f"n_periods must be >= 2, got {n_periods}")
    if period_days <= 0:
        raise ConfigurationError(
            f"period_days must be > 0, got {period_days}"
        )
    total_days = (n_periods + 1) * period_days  # one history period
    traces = apply_seasonal_drift(
        generate_datacenter(
            datacenter_key, scale=settings.scale, days=total_days
        ),
        amplitude=seasonal_amplitude,
        period_days=n_periods * period_days / 1.5,
    )
    pool = settings.build_pool(traces)
    period_hours = period_days * 24
    evaluation = traces.window(period_hours, total_days * 24)
    emulator = ConsolidationEmulator(trace_set=evaluation, datacenter=pool)
    config = PlanningConfig(interval_hours=settings.interval_hours)

    def context_for(history_start: int) -> PlanningContext:
        return PlanningContext(
            history=traces.window(
                history_start, history_start + period_hours
            ),
            evaluation=evaluation,
            datacenter=pool,
            config=config,
        )

    # Static: one lifetime plan from the first history window.
    static_schedule = StaticConsolidation().plan(context_for(0))
    static_result = emulator.evaluate(static_schedule, scheme="static")

    # Semi-static: re-plan each period from the preceding window.
    segments: List[ScheduledPlacement] = []
    servers_per_period: List[int] = []
    for period in range(n_periods):
        history_start = period * period_hours
        schedule = SemiStaticConsolidation().plan(context_for(history_start))
        placement = schedule.segments[0].placement
        servers_per_period.append(placement.active_host_count)
        segments.append(
            ScheduledPlacement(
                placement=placement,
                start_hour=period * period_hours,
                end_hour=(period + 1) * period_hours,
            )
        )
    semi_schedule = PlacementSchedule(segments=tuple(segments))
    semi_result = emulator.evaluate(semi_schedule, scheme="semi-static")

    dynamic_result = None
    if include_dynamic:
        dynamic_schedule = DynamicConsolidation().plan(context_for(0))
        dynamic_result = emulator.evaluate(
            dynamic_schedule, scheme="dynamic"
        )

    return MultiPeriodResult(
        workload=traces.name,
        n_periods=n_periods,
        period_days=period_days,
        static=static_result,
        semi_static=semi_result,
        semi_static_servers_per_period=tuple(servers_per_period),
        dynamic=dynamic_result,
    )
