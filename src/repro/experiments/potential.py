"""The headline potential-savings study (paper §1.1 vs §1.3).

The introduction's pitch: servers averaging 5% CPU with 50% peaks mean
dynamic consolidation could cut infrastructure "by a factor of 10 over
static consolidation".  The paper's contribution is deflating that
number: once memory (barely bursty, Obs. 2) is the binding resource
(Obs. 3), "these two observations combined reduce the potential of
dynamic VM consolidation to reduce infrastructure costs from 10X to a
much more modest 1.5X".

:func:`potential_gain` computes both numbers for a trace set:

* **CPU-only potential** — the intro's argument: size every VM at its
  peak (static) vs at its per-interval average (ideal dynamic), CPU
  alone: peak-to-average territory, ~5-10× for bursty estates.
* **Realized potential** — the paper's correction: hosts must fit *both*
  resources, so the provisionable gain is limited by whichever resource
  is binding on the consolidation hardware; memory's ~1.5× P2A caps it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.statistics import interval_demand
from repro.exceptions import ConfigurationError
from repro.metrics.catalog import HS23_ELITE, ServerModel
from repro.workloads.trace import TraceSet

__all__ = ["PotentialGain", "potential_gain"]


@dataclass(frozen=True)
class PotentialGain:
    """Static-vs-ideal-dynamic capacity requirement ratios for one DC.

    Attributes
    ----------
    per_server_cpu_gain:
        Median per-server CPU peak-to-average at the consolidation
        interval — the §1.1 headline number (Fig. 1's "provision 5%
        instead of 50%" argument lives at this level: ~5-10× for the
        bursty estates).
    aggregate_cpu_gain:
        The same ratio on the *aggregate* CPU demand — statistical
        multiplexing already claws back most of the per-server promise
        before memory even enters.
    memory_only_gain:
        Aggregate memory peak-to-average (~1.1-1.5×, Obs. 2).
    realized_gain:
        Static vs ideal-dynamic host count when every interval must fit
        *both* resources on the reference blade — the paper's "much more
        modest 1.5X".
    """

    workload: str
    per_server_cpu_gain: float
    aggregate_cpu_gain: float
    memory_only_gain: float
    realized_gain: float

    @property
    def deflation_factor(self) -> float:
        """How much of the intro's per-server promise evaporates."""
        if self.realized_gain <= 0:
            return float("inf")
        return self.per_server_cpu_gain / self.realized_gain


def _host_requirement(
    cpu_demand: np.ndarray,
    memory_demand: np.ndarray,
    reference: ServerModel,
) -> float:
    """Fractional host count needed for an aggregate demand point."""
    return max(
        cpu_demand / reference.cpu_rpe2, memory_demand / reference.memory_gb
    )


def potential_gain(
    trace_set: TraceSet,
    *,
    interval_hours: float = 2.0,
    reference: ServerModel = HS23_ELITE,
) -> PotentialGain:
    """Idealized static-vs-dynamic capacity ratio for one datacenter.

    Static capacity = hosts needed if every interval must fit the
    window's worst aggregate interval demand (peak sizing, perfect
    packing).  Ideal dynamic capacity = the *average* over intervals of
    the hosts each interval needs (perfect elasticity, no reservation,
    no migration cost — deliberately utopian; this is the upper bound
    the intro's 10× argument implies).
    """
    points = interval_hours / trace_set.interval_hours
    if points != int(points):
        raise ConfigurationError(
            f"interval {interval_hours}h does not align to "
            f"{trace_set.interval_hours}h samples"
        )
    cpu = interval_demand(trace_set.aggregate_cpu_rpe2(), int(points))
    memory = interval_demand(trace_set.aggregate_memory_gb(), int(points))

    per_server = float(
        np.median(
            [
                _peak_to_average(
                    interval_demand(trace.cpu_rpe2, int(points))
                )
                for trace in trace_set
            ]
        )
    )
    aggregate_cpu = float(cpu.max() / cpu.mean()) if cpu.mean() > 0 else 1.0
    memory_only = (
        float(memory.max() / memory.mean()) if memory.mean() > 0 else 1.0
    )

    per_interval_hosts = np.array(
        [
            _host_requirement(c, m, reference)
            for c, m in zip(cpu, memory)
        ]
    )
    static_hosts = float(per_interval_hosts.max())
    dynamic_hosts = float(per_interval_hosts.mean())
    realized = static_hosts / dynamic_hosts if dynamic_hosts > 0 else 1.0

    return PotentialGain(
        workload=trace_set.name,
        per_server_cpu_gain=per_server,
        aggregate_cpu_gain=aggregate_cpu,
        memory_only_gain=memory_only,
        realized_gain=realized,
    )


def _peak_to_average(values: np.ndarray) -> float:
    mean = values.mean()
    return float(values.max() / mean) if mean > 0 else 1.0
