"""What the paper reports, as machine-checkable bands.

Each target captures a *shape* claim from the paper's text or figures —
who wins, by roughly what factor, where crossovers fall — with a
tolerance band wide enough to absorb synthetic-trace noise but tight
enough that a broken reproduction fails.  The calibration tests in
``tests/experiments/test_paper_targets.py`` assert the generated
workloads and the consolidation comparison stay inside these bands.

Bands are indexed by datacenter key where applicable.  ``(lo, hi)``
bounds are inclusive.
"""

from __future__ import annotations

from typing import Mapping, Tuple

__all__ = [
    "CPU_COV_HEAVY_TAILED_FRACTION",
    "CPU_P2A_MEDIAN_1H",
    "MEMORY_COV_HEAVY_TAILED_FRACTION",
    "MEMORY_P2A_LE_1_5_FRACTION",
    "MEMORY_CONSTRAINED_FRACTION",
    "MEAN_CPU_UTILIZATION",
    "MIGRATION_RESERVATION",
    "SPACE_ORDERING",
    "STOCHASTIC_SPACE_VS_VANILLA",
    "DYNAMIC_POWER_VS_STOCHASTIC",
    "OLIO_SCALING",
]

Band = Tuple[float, float]


#: Table 2: mean CPU utilization per datacenter.
MEAN_CPU_UTILIZATION: Mapping[str, Band] = {
    "banking": (0.04, 0.07),
    "airlines": (0.006, 0.02),
    "natural-resources": (0.10, 0.14),
    "beverage": (0.05, 0.08),
}

#: Fig. 2 + Obs. 1: median CPU peak-to-average ratio at 1 h intervals.
#: Banking/Beverage are very bursty (median >= 5); Airlines/NatRes modest.
CPU_P2A_MEDIAN_1H: Mapping[str, Band] = {
    "banking": (5.0, 14.0),
    "airlines": (2.0, 9.0),
    "natural-resources": (2.0, 4.5),
    "beverage": (4.0, 12.0),
}

#: Fig. 3: fraction of servers with CPU CoV >= 1 (heavy-tailed).
#: Paper: Banking > 50%, Airlines ~30%, NatRes ~15%, Beverage ~Banking.
CPU_COV_HEAVY_TAILED_FRACTION: Mapping[str, Band] = {
    "banking": (0.50, 0.85),
    "airlines": (0.12, 0.40),
    "natural-resources": (0.05, 0.25),
    "beverage": (0.35, 0.75),
}

#: Fig. 5 + Obs. 2: fraction of servers with memory CoV >= 1.
#: Paper: Banking ~20%, Airlines/NatRes none, Beverage < 10%.
MEMORY_COV_HEAVY_TAILED_FRACTION: Mapping[str, Band] = {
    "banking": (0.10, 0.35),
    "airlines": (0.0, 0.02),
    "natural-resources": (0.0, 0.02),
    "beverage": (0.02, 0.12),
}

#: Fig. 4: fraction of servers with memory P2A <= 1.5 at 1 h intervals.
#: Paper: Banking > 50%, Airlines ~90%, NatRes ~60%, Beverage high.
MEMORY_P2A_LE_1_5_FRACTION: Mapping[str, Band] = {
    "banking": (0.55, 0.95),
    "airlines": (0.80, 1.00),
    "natural-resources": (0.50, 0.85),
    "beverage": (0.75, 1.00),
}

#: Fig. 6 + Obs. 3: fraction of 2 h intervals that are memory-constrained
#: (aggregate CPU:memory demand ratio below the HS23 ratio of 160).
#: Paper: Banking ~30%, Airlines/NatRes ~always, Beverage > 90%.
MEMORY_CONSTRAINED_FRACTION: Mapping[str, Band] = {
    "banking": (0.15, 0.50),
    "airlines": (0.98, 1.00),
    "natural-resources": (0.90, 1.00),
    "beverage": (0.88, 1.00),
}

#: Obs. 4: resources to reserve for reliable live migration.
MIGRATION_RESERVATION: Band = (0.15, 0.30)

#: Fig. 7 (space): the ordering claim.  For every datacenter,
#: stochastic <= dynamic (stochastic outperforms dynamic in space cost),
#: and dynamic < vanilla for all but Airlines.
SPACE_ORDERING = {
    "stochastic_not_worse_than_dynamic_slack": 0.02,
    "dynamic_beats_vanilla_except": ("airlines",),
}

#: Fig. 7 (space): stochastic's normalized space cost vs vanilla.
#: Paper: "recent stochastic techniques improve ... by more than 15%".
STOCHASTIC_SPACE_VS_VANILLA: Mapping[str, Band] = {
    "banking": (0.55, 0.90),
    "airlines": (0.75, 1.00),
    "natural-resources": (0.75, 0.95),
    "beverage": (0.55, 0.90),
}

#: Fig. 7 (power): dynamic's power cost relative to stochastic.
#: Paper: large savings for Banking (~50%) and Beverage; muted (possibly
#: negative) for Airlines and Natural Resources.
DYNAMIC_POWER_VS_STOCHASTIC: Mapping[str, Band] = {
    "banking": (0.45, 0.85),
    "airlines": (0.90, 1.55),
    "natural-resources": (0.85, 1.20),
    "beverage": (0.50, 0.90),
}

#: §4.1 Olio aside: 6x throughput -> ~7.9x CPU and ~3x memory.
OLIO_SCALING = {
    "throughput_factor": 6.0,
    "cpu_factor": (7.5, 8.3),
    "memory_factor": (2.7, 3.3),
}
