"""Section-4 trace analysis experiments (Figs. 1-6, Table 2).

Each function generates (or accepts) the datacenter traces and returns a
plain data structure the benches print.  Figures that are CDFs are
tabulated on a fixed grid, which is the text-mode equivalent of the
paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.burstiness import (
    DEFAULT_INTERVALS_HOURS,
    BurstinessReport,
    analyze_burstiness,
)
from repro.analysis.resource_ratio import (
    ResourceRatioReport,
    analyze_resource_ratio,
)
from repro.workloads.datacenters import ALL_DATACENTERS, generate_datacenter
from repro.workloads.trace import TraceSet

__all__ = [
    "sample_bursty_servers",
    "table2_summary",
    "burstiness_by_datacenter",
    "resource_ratio_by_datacenter",
    "P2A_GRID",
    "COV_GRID",
    "RATIO_GRID",
]

#: Tabulation grids for the CDF figures (x-axis sample points).
P2A_GRID: Tuple[float, ...] = (1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0)
COV_GRID: Tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0)
RATIO_GRID: Tuple[float, ...] = (10, 25, 50, 100, 160, 250, 400, 800)


@dataclass(frozen=True)
class Fig1Sample:
    """One server's week of CPU utilization (Fig. 1)."""

    vm_id: str
    hourly_util: np.ndarray

    @property
    def average(self) -> float:
        return float(self.hourly_util.mean())

    @property
    def peak(self) -> float:
        return float(self.hourly_util.max())


def sample_bursty_servers(
    trace_set: Optional[TraceSet] = None,
    *,
    n_servers: int = 2,
    days: int = 7,
    scale: float = 0.25,
) -> Tuple[Fig1Sample, ...]:
    """Fig. 1: servers from the Banking datacenter with low average but
    high peak CPU utilization.

    The paper picked two servers "completely at random" and found average
    < 5% with peaks > 50%; to make the bench deterministic we pick the
    servers that best exhibit the paper's observation (avg < 6%, highest
    peak) — the phenomenon is generic, the selection is presentation.
    """
    if trace_set is None:
        trace_set = generate_datacenter("banking", scale=scale)
    hours = days * 24
    candidates = []
    for trace in trace_set:
        util = trace.cpu_util.values[:hours]
        if util.mean() < 0.06:
            candidates.append(Fig1Sample(trace.vm_id, util))
    candidates.sort(key=lambda s: s.peak, reverse=True)
    return tuple(candidates[:n_servers])


def table2_summary(
    scale: float = 0.25, *, days: int = 30
) -> Tuple[Dict[str, object], ...]:
    """Table 2: per-datacenter server count and mean CPU utilization."""
    rows = []
    for config in ALL_DATACENTERS:
        trace_set = generate_datacenter(config.key, scale=scale, days=days)
        rows.append(
            {
                "name": config.label,
                "industry": config.industry,
                "paper_servers": config.server_count,
                "generated_servers": len(trace_set),
                "paper_cpu_util": config.mean_cpu_util,
                "measured_cpu_util": trace_set.mean_cpu_utilization(),
                "web_fraction": config.web_fraction,
            }
        )
    return tuple(rows)


def burstiness_by_datacenter(
    scale: float = 0.25,
    *,
    intervals_hours: Sequence[float] = DEFAULT_INTERVALS_HOURS,
    trace_sets: Optional[Mapping[str, TraceSet]] = None,
) -> Dict[str, BurstinessReport]:
    """Figs. 2-5: burstiness reports for all four datacenters."""
    reports = {}
    for config in ALL_DATACENTERS:
        if trace_sets is not None and config.key in trace_sets:
            trace_set = trace_sets[config.key]
        else:
            trace_set = generate_datacenter(config.key, scale=scale)
        reports[config.key] = analyze_burstiness(
            trace_set, intervals_hours=intervals_hours
        )
    return reports


def resource_ratio_by_datacenter(
    scale: float = 0.25,
    *,
    interval_hours: float = 2.0,
    trace_sets: Optional[Mapping[str, TraceSet]] = None,
) -> Dict[str, ResourceRatioReport]:
    """Fig. 6: aggregate CPU:memory ratio reports (reference = 160)."""
    reports = {}
    for config in ALL_DATACENTERS:
        if trace_sets is not None and config.key in trace_sets:
            trace_set = trace_sets[config.key]
        else:
            trace_set = generate_datacenter(config.key, scale=scale)
        reports[config.key] = analyze_resource_ratio(
            trace_set, interval_hours=interval_hours
        )
    return reports
