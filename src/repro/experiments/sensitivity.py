"""Sensitivity analysis over the live-migration reservation (Figs. 13-16).

"For a utilization bound of U, 1-U fraction of all server resources are
reserved for live migration."  The sweep re-runs dynamic consolidation
at each bound while the semi-static variants (which take no reservation)
stay fixed — the flat reference lines in the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.core.dynamic import DynamicConsolidation
from repro.core.planner import ConsolidationPlanner
from repro.core.semistatic import SemiStaticConsolidation
from repro.core.stochastic import StochasticConsolidation
from repro.experiments.settings import (
    UTILIZATION_BOUND_SWEEP,
    ExperimentSettings,
)
from repro.workloads.datacenters import generate_datacenter
from repro.workloads.trace import TraceSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner import ExperimentRunner

__all__ = ["SensitivityResult", "run_sensitivity", "run_sensitivity_all"]


@dataclass(frozen=True)
class SensitivityResult:
    """Server counts across the utilization-bound sweep for one DC."""

    workload: str
    semi_static_servers: int
    stochastic_servers: int
    dynamic_servers_by_bound: Dict[float, int]

    def crossover_bound(self) -> Optional[float]:
        """Smallest bound at which dynamic matches/beats stochastic.

        The paper's Fig. 13 headline: Banking crosses at ~0.85.  Returns
        None if dynamic never reaches stochastic within the sweep.
        """
        for bound in sorted(self.dynamic_servers_by_bound):
            if self.dynamic_servers_by_bound[bound] <= (
                self.stochastic_servers
            ):
                return bound
        return None

    def improvement_at_full_bound(self) -> float:
        """Dynamic's server reduction vs stochastic with no reservation.

        Positive values mean dynamic uses fewer servers (paper: ~18% for
        Banking, ~17% for Natural Resources).
        """
        full = max(self.dynamic_servers_by_bound)
        dynamic = self.dynamic_servers_by_bound[full]
        return 1.0 - dynamic / self.stochastic_servers

    def rows(self) -> Tuple[Dict[str, object], ...]:
        return tuple(
            {
                "workload": self.workload,
                "utilization_bound": bound,
                "dynamic_servers": servers,
                "semi_static_servers": self.semi_static_servers,
                "stochastic_servers": self.stochastic_servers,
            }
            for bound, servers in sorted(
                self.dynamic_servers_by_bound.items()
            )
        )


def run_sensitivity(
    datacenter_key: str,
    settings: Optional[ExperimentSettings] = None,
    *,
    bounds: Sequence[float] = UTILIZATION_BOUND_SWEEP,
    trace_set: Optional[TraceSet] = None,
) -> SensitivityResult:
    """Sweep the dynamic utilization bound for one datacenter."""
    settings = settings or ExperimentSettings()
    if trace_set is None:
        trace_set = generate_datacenter(datacenter_key, scale=settings.scale)
    pool = settings.build_pool(trace_set)

    reference = ConsolidationPlanner(
        traces=trace_set,
        datacenter=pool,
        config=settings.planning_config(),
        evaluation_days=settings.evaluation_days,
    )
    semi = reference.run(SemiStaticConsolidation()).provisioned_servers
    stochastic = reference.run(StochasticConsolidation()).provisioned_servers

    dynamic_by_bound: Dict[float, int] = {}
    for bound in bounds:
        planner = ConsolidationPlanner(
            traces=trace_set,
            datacenter=pool,
            config=settings.planning_config(utilization_bound=bound),
            evaluation_days=settings.evaluation_days,
        )
        result = planner.run(DynamicConsolidation())
        dynamic_by_bound[float(bound)] = result.provisioned_servers
    return SensitivityResult(
        workload=trace_set.name,
        semi_static_servers=semi,
        stochastic_servers=stochastic,
        dynamic_servers_by_bound=dynamic_by_bound,
    )


def run_sensitivity_all(
    settings: Optional[ExperimentSettings] = None,
    *,
    bounds: Sequence[float] = UTILIZATION_BOUND_SWEEP,
    datacenters: Optional[Sequence[str]] = None,
    runner: Optional["ExperimentRunner"] = None,
) -> Dict[str, SensitivityResult]:
    """Run the bound sweep for every datacenter (the Figs. 13-16 grid).

    With a :class:`~repro.runner.ExperimentRunner` the per-datacenter
    sweeps fan out over its process pool and content-addressed cache;
    otherwise they run serially in-process.
    """
    from repro.workloads.datacenters import ALL_DATACENTERS

    settings = settings or ExperimentSettings()
    keys = (
        [config.key for config in ALL_DATACENTERS]
        if datacenters is None
        else list(datacenters)
    )
    if runner is not None:
        from repro.runner.tasks import sensitivity_sweep

        report = runner.run(
            sensitivity_sweep(settings, keys, bounds=bounds)
        )
        return dict(zip(keys, report.results))
    return {
        key: run_sensitivity(key, settings, bounds=bounds) for key in keys
    }
