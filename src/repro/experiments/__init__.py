"""Experiment harness: settings, trace analysis, comparisons, figures."""

from repro.experiments.ablations import (
    PREDICTOR_LADDER,
    generate_uncorrelated_datacenter,
    run_correlation_ablation,
    run_predictor_ablation,
    run_tail_overlap_ablation,
)
from repro.experiments.comparison import (
    ComparisonResult,
    default_algorithms,
    run_all,
    run_comparison,
)
from repro.experiments.figures import FIGURES, list_figures, run_figure
from repro.experiments.intervals import (
    DEFAULT_INTERVAL_SWEEP,
    IntervalPoint,
    run_interval_study,
)
from repro.experiments.multiperiod import (
    MultiPeriodResult,
    apply_seasonal_drift,
    run_multiperiod,
)
from repro.experiments.potential import PotentialGain, potential_gain
from repro.experiments.report import DEFAULT_REPORT_ORDER, generate_report
from repro.experiments.sensitivity import (
    SensitivityResult,
    run_sensitivity,
    run_sensitivity_all,
)
from repro.experiments.validate import (
    ValidationCheck,
    ValidationReport,
    validate_reproduction,
)
from repro.experiments.settings import (
    UTILIZATION_BOUND_SWEEP,
    ExperimentSettings,
    default_scale,
)

__all__ = [
    "ComparisonResult",
    "DEFAULT_INTERVAL_SWEEP",
    "DEFAULT_REPORT_ORDER",
    "generate_report",
    "ExperimentSettings",
    "IntervalPoint",
    "MultiPeriodResult",
    "apply_seasonal_drift",
    "run_multiperiod",
    "FIGURES",
    "PREDICTOR_LADDER",
    "PotentialGain",
    "potential_gain",
    "generate_uncorrelated_datacenter",
    "run_correlation_ablation",
    "run_predictor_ablation",
    "run_tail_overlap_ablation",
    "SensitivityResult",
    "UTILIZATION_BOUND_SWEEP",
    "ValidationCheck",
    "ValidationReport",
    "validate_reproduction",
    "default_algorithms",
    "default_scale",
    "list_figures",
    "run_all",
    "run_comparison",
    "run_figure",
    "run_interval_study",
    "run_sensitivity",
    "run_sensitivity_all",
]
